// Package multihost implements the multi-host extension the paper
// sketches in Section 5.5: "UpANNS can be easily extended to multi-host
// configurations. Only query distribution and result aggregation require
// cross-host communication. The core memory-intensive search operations
// remain local to each host."
//
// The dataset is sharded contiguously across hosts; each host trains its
// own IVFPQ index over its shard and deploys it on its own simulated PIM
// system. A batch is broadcast to every host, searched locally, and the
// per-host top-k lists are merged on the coordinator. Distances from
// different hosts are compared in the float domain (each host has its own
// LUT quantization scale), which is exactly as approximate as IVFPQ
// itself.
package multihost

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ivfpq"
	"repro/internal/pim"
	"repro/internal/topk"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// Config parameterizes a multi-host deployment.
type Config struct {
	Hosts       int // number of hosts; the dataset shards evenly
	DPUsPerHost int // simulated DPUs per host
	Index       ivfpq.Params
	Engine      core.Config
	// InterHostLatency models one broadcast + gather round trip through
	// the coordinator (seconds); 0 uses a datacenter-typical 50us.
	InterHostLatency float64
}

// Host is one shard's deployment.
type Host struct {
	BaseID int64 // global id of the shard's first vector
	Index  *ivfpq.Index
	Engine *core.Engine
}

// Cluster is a deployed multi-host UpANNS.
type Cluster struct {
	Hosts   []*Host
	cfg     Config
	latency float64
}

// Build shards data across cfg.Hosts hosts and deploys each shard. The
// optional histQueries sample drives per-host placement frequencies.
func Build(data *vecmath.Matrix, histQueries *vecmath.Matrix, cfg Config) (*Cluster, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("multihost: need at least one host")
	}
	if data.Rows < cfg.Hosts {
		return nil, fmt.Errorf("multihost: %d rows cannot shard over %d hosts", data.Rows, cfg.Hosts)
	}
	lat := cfg.InterHostLatency
	if lat == 0 {
		lat = 50e-6
	}
	cl := &Cluster{cfg: cfg, latency: lat}
	per := (data.Rows + cfg.Hosts - 1) / cfg.Hosts
	for h := 0; h < cfg.Hosts; h++ {
		lo, hi := h*per, (h+1)*per
		if hi > data.Rows {
			hi = data.Rows
		}
		if lo >= hi {
			break
		}
		shard := vecmath.WrapMatrix(data.Data[lo*data.Dim:hi*data.Dim], hi-lo, data.Dim)
		p := cfg.Index
		p.Seed += uint64(h) * 1013
		ix := ivfpq.Train(shard, p)
		ix.Add(shard, 0)

		spec := pim.DefaultSpec()
		spec.NumDIMMs = 1
		spec.DPUsPerDIMM = cfg.DPUsPerHost
		sys := pim.NewSystem(spec)
		var freqs []float64
		if histQueries != nil {
			freqs = workload.ClusterFrequencies(ix.Coarse, histQueries, cfg.Engine.NProbe)
		}
		eng, err := core.Build(ix, sys, freqs, cfg.Engine)
		if err != nil {
			return nil, fmt.Errorf("multihost: host %d: %w", h, err)
		}
		cl.Hosts = append(cl.Hosts, &Host{BaseID: int64(lo), Index: ix, Engine: eng})
	}
	return cl, nil
}

// Result is one multi-host batch outcome.
type Result struct {
	Results [][]topk.Candidate
	// HostSeconds is each host's local batch time; the batch completes at
	// the slowest host plus the coordination round trip.
	HostSeconds []float64
	TotalSec    float64
	QPS         float64
}

// SearchBatch broadcasts queries to every host and merges the top-k.
func (cl *Cluster) SearchBatch(queries *vecmath.Matrix) (*Result, error) {
	nq := queries.Rows
	k := cl.cfg.Engine.K
	type hostOut struct {
		idx int
		br  *core.BatchResult
		err error
	}
	outs := make([]hostOut, len(cl.Hosts))
	var wg sync.WaitGroup
	for hi, h := range cl.Hosts {
		wg.Add(1)
		go func(hi int, h *Host) {
			defer wg.Done()
			br, err := h.Engine.SearchBatch(queries)
			outs[hi] = hostOut{hi, br, err}
		}(hi, h)
	}
	wg.Wait()

	res := &Result{
		Results:     make([][]topk.Candidate, nq),
		HostSeconds: make([]float64, len(cl.Hosts)),
	}
	heaps := make([]*topk.Heap, nq)
	slowest := 0.0
	for _, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("multihost: host %d: %w", o.idx, o.err)
		}
		secs := o.br.Timing.Total()
		res.HostSeconds[o.idx] = secs
		if secs > slowest {
			slowest = secs
		}
		base := cl.Hosts[o.idx].BaseID
		for qi, cands := range o.br.Results {
			if heaps[qi] == nil {
				heaps[qi] = topk.NewHeap(k)
			}
			for _, c := range cands {
				heaps[qi].Push(base+c.ID, c.Dist)
			}
		}
	}
	for qi, h := range heaps {
		if h != nil {
			res.Results[qi] = h.Sorted()
		}
	}
	res.TotalSec = slowest + cl.latency
	if res.TotalSec > 0 {
		res.QPS = float64(nq) / res.TotalSec
	}
	return res, nil
}

// NumVectors returns the total indexed vectors across hosts.
func (cl *Cluster) NumVectors() int64 {
	var n int64
	for _, h := range cl.Hosts {
		n += h.Index.NTotal
	}
	return n
}
