package bench

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/filter"
	"repro/internal/ivfpq"
	"repro/internal/metrics"
	"repro/internal/mutable"
	"repro/internal/topk"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// The filtered experiment measures the attribute-filter subsystem
// (internal/filter) end to end on a mutable deployment: recall@k and
// tail latency versus predicate selectivity, for each execution
// strategy. The sweep pins the subsystem's central claim — no single
// strategy wins everywhere, and the selectivity-adaptive executor tracks
// the winner at both extremes:
//
//   - at very low selectivity (0.1%) pre-filtering wins: the allow-bitmap
//     skips almost every ADC distance in the probed clusters, while
//     post-filtering must inflate its fetch k enormously (capped at
//     filter.MaxFetchK) and still loses recall;
//   - at high selectivity (50%) post-filtering wins: most scanned codes
//     pass anyway, so a modest fetch inflation beats per-code bitmap
//     probes;
//   - the adaptive executor must match the better strategy's p99 at both
//     extremes (within a CI-noise tolerance), and filtered recall at
//     >= 10% selectivity must stay within 2% of unfiltered recall.
//
// Recall is measured against exact filtered ground truth: brute force
// over only the vectors the predicate admits.

// filteredFractions is the selectivity sweep (exact match fractions by
// construction; see workload.SelectivitySweep).
var filteredFractions = []float64{0.001, 0.01, 0.1, 0.5}

// filteredPasses is how many times each (band, mode) measurement is
// repeated (each pass runs the query set filteredReps times); the best
// pass is kept, so an ambient-load hiccup on a CI machine cannot
// masquerade as a strategy regression.
const (
	filteredPasses = 5
	filteredReps   = 2
)

// filteredTol is the multiplicative headroom the adaptive executor's p99
// gets over the better of pre/post, and filteredSlack the absolute
// headroom on top of it. The adaptive path dispatches to exactly one of
// the two strategies after a cheap cardinality estimate, so it can only
// lose by planning overhead and measurement noise; at the tiny CI scale
// per-query latencies sit in the tens of microseconds, where scheduler
// jitter alone exceeds any relative bound — hence the absolute term.
const (
	filteredTol   = 1.25
	filteredSlack = 200e-6 // seconds
)

// FilteredModeArtifact is one (band, strategy) measurement.
type FilteredModeArtifact struct {
	Mode       string  `json:"mode"`
	Recall     float64 `json:"recall"`
	P50        float64 `json:"p50_seconds"`
	P99        float64 `json:"p99_seconds"`
	Mismatches int     `json:"predicate_mismatches"`
}

// FilteredBandArtifact is one selectivity operating point.
type FilteredBandArtifact struct {
	Fraction float64 `json:"target_selectivity"`
	Members  int     `json:"matching_vectors"`
	Expr     string  `json:"filter"`

	Pre      FilteredModeArtifact `json:"pre"`
	Post     FilteredModeArtifact `json:"post"`
	Adaptive FilteredModeArtifact `json:"adaptive"`
}

// FilteredArtifact is the experiment's machine-readable result
// (BENCH_filtered.json); Violations makes it self-checking.
type FilteredArtifact struct {
	BaseN            int     `json:"base_n"`
	K                int     `json:"k"`
	UnfilteredRecall float64 `json:"unfiltered_recall"`

	Bands []FilteredBandArtifact `json:"bands"`

	// Stats is the deployment's planning-counter snapshot after the run
	// (decision split and selectivity histogram).
	Stats *filter.StatsSnapshot `json:"filter_stats"`
}

// Violations returns the acceptance-shape regressions this run exhibits
// (empty = healthy): every returned candidate satisfies its predicate,
// the adaptive executor is no worse than the better of pre/post on p99
// at the lowest and highest selectivity bands, and filtered recall at
// >= 10% selectivity holds within 2% of unfiltered recall.
func (a *FilteredArtifact) Violations() []string {
	var v []string
	if len(a.Bands) == 0 {
		v = append(v, "filtered: no selectivity bands measured")
		return v
	}
	for _, b := range a.Bands {
		for _, m := range []FilteredModeArtifact{b.Pre, b.Post, b.Adaptive} {
			if m.Mismatches > 0 {
				v = append(v, fmt.Sprintf("filtered[%g%% %s]: %d results violate the predicate",
					100*b.Fraction, m.Mode, m.Mismatches))
			}
			if m.P99 <= 0 {
				v = append(v, fmt.Sprintf("filtered[%g%% %s]: no tail latency measured", 100*b.Fraction, m.Mode))
			}
		}
	}
	for _, b := range []FilteredBandArtifact{a.Bands[0], a.Bands[len(a.Bands)-1]} {
		best := b.Pre.P99
		if b.Post.P99 < best {
			best = b.Post.P99
		}
		if b.Adaptive.P99 > best*filteredTol+filteredSlack {
			v = append(v, fmt.Sprintf(
				"filtered[%g%%]: adaptive p99 %.6fs worse than the better of pre %.6fs / post %.6fs (tolerance %.2fx + %.0fus)",
				100*b.Fraction, b.Adaptive.P99, b.Pre.P99, b.Post.P99, filteredTol, filteredSlack*1e6))
		}
	}
	for _, b := range a.Bands {
		if b.Fraction >= 0.10 && b.Adaptive.Recall < a.UnfilteredRecall-0.02 {
			v = append(v, fmt.Sprintf(
				"filtered[%g%%]: adaptive recall %.4f more than 2%% below unfiltered %.4f",
				100*b.Fraction, b.Adaptive.Recall, a.UnfilteredRecall))
		}
	}
	return v
}

// Filtered runs the experiment and renders the report.
func (c *Context) Filtered() (*Report, error) {
	art, err := c.FilteredRun()
	if err != nil {
		return nil, err
	}
	return filteredReport(art), nil
}

// FilteredRun executes the selectivity sweep, returning the raw artifact
// (tests assert on it directly; Filtered renders it).
func (c *Context) FilteredRun() (*FilteredArtifact, error) {
	s := c.getSetup(dataset.SIFT1B, c.O.IVFGrid[0])
	nprobe := c.O.NProbeGrid[len(c.O.NProbeGrid)-1]
	k := c.O.K
	n := s.ds.Vectors.Rows

	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	schema, attrs, bands, err := workload.SelectivitySweep(ids, filteredFractions, c.O.Seed+3)
	if err != nil {
		return nil, err
	}

	// A dedicated mutable deployment (the shared setup index must stay
	// pristine for other experiments): same corpus, schema enabled,
	// background compactor off — this sweep measures scan strategies, not
	// churn.
	ix := trainFreshIndex(s, c.O)
	mcfg := mutable.ServingConfig(nprobe, k, c.O.DPUs, c.O.Seed)
	mcfg.CheckInterval = -1
	mcfg.Schema = schema
	u, err := mutable.New(ix, s.freqs, mcfg)
	if err != nil {
		return nil, fmt.Errorf("filtered: deploying: %w", err)
	}
	defer u.Close()
	if err := u.LoadAttrs(ids, attrs); err != nil {
		return nil, err
	}

	truth := dataset.GroundTruth(s.ds.Vectors, s.queries, k)
	unfiltered, err := u.Search(s.queries, mutable.SearchOpts{K: k})
	if err != nil {
		return nil, err
	}
	art := &FilteredArtifact{
		BaseN:            n,
		K:                k,
		UnfilteredRecall: dataset.Recall(unfiltered, truth),
	}

	store := u.AttrStore()
	for _, band := range bands {
		ba := FilteredBandArtifact{Fraction: band.Fraction, Members: band.Members, Expr: band.Expr}
		bandTruth := filteredGroundTruth(s.ds.Vectors, s.queries, k, store, band.Pred)
		for _, mode := range []filter.Mode{filter.ModePre, filter.ModePost, filter.ModeAuto} {
			ma, err := runFilteredMode(u, s.queries, k, band.Pred, mode, store, bandTruth)
			if err != nil {
				return nil, fmt.Errorf("filtered: band %g mode %v: %w", band.Fraction, mode, err)
			}
			switch mode {
			case filter.ModePre:
				ba.Pre = ma
			case filter.ModePost:
				ba.Post = ma
			default:
				ba.Adaptive = ma
			}
		}
		art.Bands = append(art.Bands, ba)
	}
	art.Stats = u.FilterStats()
	return art, nil
}

// trainFreshIndex duplicates the setup's populated index (shared trained
// quantizers, copied lists) so the mutable deployment can own it without
// the cached setup index ever being mutated under other experiments.
func trainFreshIndex(s *setup, _ Options) *ivfpq.Index {
	ix := s.ix.CloneStructure()
	for ci := range s.ix.Lists {
		l := &s.ix.Lists[ci]
		for i := 0; i < l.Len(); i++ {
			ix.AppendEncoded(int32(ci), l.IDs[i], l.Code(i, ix.PQ.M))
		}
	}
	return ix
}

// filteredGroundTruth brute-forces the exact k nearest *matching* base
// vectors per query: the recall denominator a filtered search is judged
// against.
func filteredGroundTruth(base, queries *vecmath.Matrix, k int, store *filter.Store, pred filter.Pred) [][]topk.Candidate {
	allow := store.Eval(pred)
	rows := make([]int, 0, allow.Cardinality())
	allow.ForEach(func(id int64) bool {
		rows = append(rows, int(id))
		return true
	})
	sub := vecmath.NewMatrix(len(rows), base.Dim)
	for i, r := range rows {
		sub.SetRow(i, base.Row(r))
	}
	truth := dataset.GroundTruth(sub, queries, k)
	for qi := range truth {
		for i := range truth[qi] {
			truth[qi][i].ID = int64(rows[truth[qi][i].ID])
		}
	}
	return truth
}

// runFilteredMode measures one (band, strategy) point: filteredPasses
// single-query passes over the full query set, keeping the best pass's
// latency profile (ambient CI load must not read as a strategy
// regression) and checking every returned candidate against the
// predicate.
func runFilteredMode(u *mutable.UpdatableIndex, queries *vecmath.Matrix, k int, pred filter.Pred, mode filter.Mode, store *filter.Store, truth [][]topk.Candidate) (FilteredModeArtifact, error) {
	ma := FilteredModeArtifact{Mode: mode.String()}
	var results [][]topk.Candidate
	for pass := 0; pass < filteredPasses; pass++ {
		lat := metrics.NewLatencyHistogram()
		res := make([][]topk.Candidate, queries.Rows)
		for rep := 0; rep < filteredReps; rep++ {
			for qi := 0; qi < queries.Rows; qi++ {
				q := vecmath.WrapMatrix(queries.Row(qi), 1, queries.Dim)
				t0 := time.Now()
				out, err := u.Search(q, mutable.SearchOpts{K: k, Pred: pred, Mode: mode})
				if err != nil {
					return ma, err
				}
				lat.Observe(time.Since(t0).Seconds())
				res[qi] = out[0]
			}
		}
		snap := lat.Snapshot()
		if pass == 0 || snap.P99 < ma.P99 {
			ma.P50, ma.P99 = snap.P50, snap.P99
		}
		results = res
	}
	for _, cands := range results {
		for _, c := range cands {
			if !store.Matches(pred, c.ID) {
				ma.Mismatches++
			}
		}
	}
	ma.Recall = dataset.Recall(results, truth)
	return ma, nil
}

// filteredReport renders the artifact as the experiment report.
func filteredReport(a *FilteredArtifact) *Report {
	rep := &Report{
		ID:       "filtered",
		Title:    "Filtered search: recall and tail latency vs selectivity (pre/post/adaptive)",
		Artifact: a,
	}
	t := metrics.NewTable(
		fmt.Sprintf("Selectivity sweep (%s, N=%d, k=%d; unfiltered recall %.4f)",
			dataset.SIFT1B.Name, a.BaseN, a.K, a.UnfilteredRecall),
		"selectivity", "matching", "mode", "recall", "p50", "p99")
	for _, b := range a.Bands {
		for _, m := range []FilteredModeArtifact{b.Pre, b.Post, b.Adaptive} {
			t.AddRow(
				fmt.Sprintf("%.2f%%", 100*b.Fraction),
				fmt.Sprintf("%d", b.Members),
				m.Mode,
				fmt.Sprintf("%.4f", m.Recall),
				metrics.Seconds(m.P50),
				metrics.Seconds(m.P99))
		}
	}
	rep.Tables = append(rep.Tables, t)

	if st := a.Stats; st != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"planner decisions: %d pre / %d post over %d filtered queries (forced: %d)",
			st.PreDecisions, st.PostDecisions, st.Filtered, st.ForcedMode))
	}
	rep.Notes = append(rep.Notes,
		"expected shape: pre-filter wins p99 at 0.1% selectivity, post-filter at 50%; the adaptive executor tracks the winner at both extremes and holds recall within 2% of unfiltered at >= 10% selectivity")
	for _, v := range a.Violations() {
		rep.Notes = append(rep.Notes, "VIOLATION: "+v)
	}
	return rep
}
