package bench

import (
	"strings"
	"testing"
)

// TestTieredExperiment checks the acceptance shape of the out-of-core
// pressure run: bit-identical results against the in-RAM index, a
// measured steady-state tail, and a hot set that actually absorbs the
// Zipf skew. The checks themselves have one source of truth —
// TieredArtifact.Violations, the same gate the CI bench-smoke job runs.
func TestTieredExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive in -short mode")
	}
	ctx := NewContext(tinyOptions())
	art, err := ctx.TieredRun()
	if err != nil {
		t.Fatal(err)
	}
	if art.Queries == 0 {
		t.Fatal("no steady-state queries measured")
	}
	if art.ColdReads == 0 && art.PrefetchHits == 0 {
		t.Fatalf("run never touched disk (cold=0, prefetch=0); the pressure setup is broken: %+v", art)
	}
	if v := art.Violations(); len(v) != 0 {
		t.Errorf("tiered artifact violations: %v", v)
	}

	rep := tieredReport(art)
	if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) == 0 {
		t.Fatal("tiered report malformed")
	}
	if !strings.Contains(rep.String(), "tiered") {
		t.Fatal("tiered report render missing id")
	}
}
