package bench

import (
	"strings"
	"testing"
)

// TestQualityExperiment asserts the quality plane's acceptance shape at
// tiny scale: the shadow-oracle estimator, head-sampling one query in
// four, must bracket the true recall measured by exact offline
// re-execution of the full stream, and the plane must actually sample.
// The wall-clock overhead pair is only meaningful in uninstrumented
// builds (bench-smoke checks it), so under the race detector the
// latency-budget violations are dropped here.
func TestQualityExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive in -short mode")
	}
	ctx := NewContext(tinyOptions())
	art, err := ctx.QualityRun()
	if err != nil {
		t.Fatal(err)
	}

	acc := art.Accuracy
	if acc == nil || art.Overhead == nil {
		t.Fatalf("incomplete artifact: %+v", art)
	}
	if want := int64(acc.Queries / acc.SampleEvery); acc.Samples != want {
		t.Errorf("estimator sampled %d of %d queries, want %d (1-in-%d)",
			acc.Samples, acc.Queries, want, acc.SampleEvery)
	}
	if acc.TrueRecall <= 0.2 {
		t.Fatalf("true recall %.4f implausibly low; harness misconfigured", acc.TrueRecall)
	}
	if acc.CILow >= acc.CIHigh || acc.Estimate < acc.CILow || acc.Estimate > acc.CIHigh {
		t.Errorf("malformed estimator interval: %+v", acc)
	}
	if art.Overhead.Shadowed == 0 {
		t.Error("overhead on-side never shadow-executed")
	}

	violations := art.Violations()
	if raceEnabled {
		kept := violations[:0]
		for _, v := range violations {
			if !strings.Contains(v, "budget") {
				kept = append(kept, v)
			}
		}
		violations = kept
	}
	if len(violations) != 0 {
		t.Fatalf("acceptance violations:\n  %s", strings.Join(violations, "\n  "))
	}
}
