package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestClusterExperiment asserts the distributed tier's acceptance shape:
// the scatter-gather router over hash-partitioned live shards matches
// single-host recall within 1%, answers every query at every shard
// count, and — with one shard killed mid-run — keeps serving with zero
// client-visible errors at recall degraded by about the lost corpus
// fraction.
func TestClusterExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive in -short mode")
	}
	ctx := NewContext(tinyOptions())
	art, err := ctx.ClusterRun()
	if err != nil {
		t.Fatal(err)
	}

	if len(art.Points) != 3 {
		t.Fatalf("measured %d shard-count points, want 3", len(art.Points))
	}
	if art.RecallSingle <= 0.1 {
		t.Fatalf("single-host recall %.4f implausibly low; harness misconfigured", art.RecallSingle)
	}
	for _, p := range art.Points {
		if p.Queries == 0 || p.QPS <= 0 {
			t.Errorf("%d shards: empty measurement (%d queries, %.1f QPS)", p.Shards, p.Queries, p.QPS)
		}
	}

	// The artifact is self-checking; the CI bench-smoke job fails on the
	// same violations.
	if v := art.Violations(); len(v) != 0 {
		t.Fatalf("acceptance violations:\n  %s", strings.Join(v, "\n  "))
	}

	// Explicit restatement of the headline criteria.
	last := art.Points[len(art.Points)-1]
	if last.Recall < art.RecallSingle-0.01 {
		t.Errorf("3-shard recall %.4f more than 1%% below single-host %.4f", last.Recall, art.RecallSingle)
	}
	if art.KillErrors != 0 {
		t.Errorf("kill drill surfaced %d client errors", art.KillErrors)
	}
	if art.KillDegraded == 0 {
		t.Error("kill drill: no degraded fanouts recorded")
	}
	if art.KillPostRecall >= art.KillPreRecall {
		t.Logf("note: post-kill recall %.4f did not drop below pre-kill %.4f (tiny corpus)",
			art.KillPostRecall, art.KillPreRecall)
	}

	// The artifact must serialize (the CI job uploads it as JSON).
	raw, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"recall_single_host", "kill_recall_after", "p99_seconds"} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("artifact JSON missing %q", key)
		}
	}

	rep := clusterReport(art)
	if rep.Artifact == nil || len(rep.Tables) == 0 {
		t.Fatal("cluster report malformed")
	}
	if !strings.Contains(rep.String(), "cluster") {
		t.Fatal("cluster report render missing id")
	}
}
