package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ivfpq"
	"repro/internal/metrics"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// Fig13 sweeps tasklets per DPU and reports kernel-time QPS normalized to
// a single tasklet. The paper observes near-linear scaling to 11 tasklets
// (the 14-stage pipeline's saturation point) and a flat curve beyond.
func (c *Context) Fig13() (*Report, error) {
	rep := &Report{ID: "fig13", Title: "QPS vs tasklets per DPU"}
	tasklets := []int{1, 2, 4, 8, 11, 16, 20, 24}
	for _, spec := range dataset.All() {
		s := c.getSetup(spec, c.O.IVFGrid[0])
		nprobe := c.O.NProbeGrid[len(c.O.NProbeGrid)/2]
		t := metrics.NewTable(fmt.Sprintf("Fig. 13 (%s): kernel QPS normalized to 1 tasklet (nprobe=%d)", spec.Name, nprobe),
			"tasklets", "kernel time", "normalized QPS")
		var base float64
		for _, nt := range tasklets {
			cfg := c.upannsConfig(nprobe)
			cfg.Tasklets = nt
			e, err := c.getEngine(s, cfg, buildKey(cfg), c.O.DPUs)
			if err != nil {
				return nil, err
			}
			br, err := e.SearchBatch(s.queries)
			if err != nil {
				return nil, err
			}
			if base == 0 {
				base = br.Timing.Kernel
			}
			t.AddRow(fmt.Sprintf("%d", nt),
				metrics.Seconds(br.Timing.Kernel),
				metrics.Ratio(base/br.Timing.Kernel))
		}
		rep.Tables = append(rep.Tables, t)
	}
	rep.Notes = append(rep.Notes,
		"expected shape: near-linear speedup to 11 tasklets, saturation beyond (paper: 11 tasklets ~11x over 1; default is 11)")
	return rep, nil
}

// Fig14 measures the co-occurrence aware encoding gain as a function of
// the achieved length reduction rate. The paper varies the rate by
// selecting queries whose probed clusters reduce most; here the rate is
// varied at the source, by sweeping the dataset's noise level — noisier
// vectors spread over more PQ codes, so fewer combinations repeat and the
// reduction rate falls.
func (c *Context) Fig14() (*Report, error) {
	rep := &Report{ID: "fig14", Title: "Co-occurrence encoding gain vs length reduction"}
	t := metrics.NewTable("Fig. 14: CAE distance-stage speedup vs length reduction rate (SIFT1B-like)",
		"noise", "reduction rate", "LUT+comb overhead", "distance speedup", "kernel speedup")
	n := c.O.N / 2
	nprobe := c.O.NProbeGrid[len(c.O.NProbeGrid)/2]
	for _, noise := range []float32{0.9, 0.5, 0.3, 0.18, 0.1} {
		spec := dataset.SIFT1B
		spec.Name = fmt.Sprintf("SIFT1B-like-noise%.2f", noise)
		spec.Noise = noise
		ds := dataset.Generate(spec, n, c.O.Seed+101)
		ix := ivfpq.Train(ds.Vectors, ivfpq.Params{NList: c.O.IVFGrid[0], M: spec.M, KSub: c.O.KSub, Seed: c.O.Seed, TrainSub: c.O.TrainSub})
		ix.Add(ds.Vectors, 0)
		queries := ds.Queries(c.O.Queries/2, c.O.Seed+5)
		freqs := workload.ClusterFrequencies(ix.Coarse, queries, nprobe)

		withCfg := core.DefaultConfig()
		withCfg.NProbe = nprobe
		withCfg.K = c.O.K
		withoutCfg := withCfg
		withoutCfg.UseCAE = false

		eW, err := core.Build(ix, c.newSystem(0), freqs, withCfg)
		if err != nil {
			return nil, err
		}
		eP, err := core.Build(ix, c.newSystem(0), freqs, withoutCfg)
		if err != nil {
			return nil, err
		}
		brW, err := eW.SearchBatch(queries)
		if err != nil {
			return nil, err
		}
		brP, err := eP.SearchBatch(queries)
		if err != nil {
			return nil, err
		}
		lutOverhead := (brW.Timing.DPULUT + brW.Timing.DPUComb) / brP.Timing.DPULUT
		t.AddRow(metrics.F(float64(noise)),
			metrics.Pct(eW.MeanReductionRate()),
			metrics.Ratio(lutOverhead),
			metrics.Ratio(brP.Timing.DPUDist/brW.Timing.DPUDist),
			metrics.Ratio(brP.Timing.Kernel/brW.Timing.Kernel))
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		"expected shape: distance-stage speedup grows with the length reduction rate; LUT time rises slightly from building the partial sums (paper Section 5.3.3)")
	return rep, nil
}

// Fig15 measures the top-k selection stage with and without pruning as k
// grows.
func (c *Context) Fig15() (*Report, error) {
	s := c.getSetup(dataset.SIFT1B, c.O.IVFGrid[0])
	nprobe := c.O.NProbeGrid[len(c.O.NProbeGrid)-1]
	t := metrics.NewTable("Fig. 15: top-k merge stage time (normalized to pruned k=10)",
		"k", "with pruning", "without pruning", "time reduction", "comparisons skipped")
	var base float64
	for _, k := range []int{10, 20, 50, 100} {
		prunedCfg := c.upannsConfig(nprobe)
		prunedCfg.K = k
		fullCfg := prunedCfg
		fullCfg.UsePruning = false

		eP, err := c.getEngine(s, prunedCfg, buildKey(prunedCfg), c.O.DPUs)
		if err != nil {
			return nil, err
		}
		brP, err := eP.SearchBatch(s.queries)
		if err != nil {
			return nil, err
		}
		eF, err := c.getEngine(s, fullCfg, buildKey(fullCfg), c.O.DPUs)
		if err != nil {
			return nil, err
		}
		brF, err := eF.SearchBatch(s.queries)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = brP.Timing.DPUMerge
		}
		skipped := 0.0
		if brP.Merge.Considered > 0 {
			skipped = float64(brP.Merge.Pruned) / float64(brP.Merge.Considered)
		}
		t.AddRow(fmt.Sprintf("%d", k),
			metrics.F(brP.Timing.DPUMerge/base),
			metrics.F(brF.Timing.DPUMerge/base),
			metrics.Pct(1-brP.Timing.DPUMerge/brF.Timing.DPUMerge),
			metrics.Pct(skipped))
	}
	return &Report{ID: "fig15", Title: "Top-k pruning time reduction",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"expected shape: merge time grows ~linearly with k; pruning's saving grows with k (paper: 68% of comparisons skipped, 3.1x stage speedup)",
		}}, nil
}

// Fig16 sweeps the query batch size and reports per-batch latency for
// Faiss-CPU, PIM-naive and UpANNS.
func (c *Context) Fig16() (*Report, error) {
	s := c.getSetup(dataset.SIFT1B, c.O.IVFGrid[0])
	nprobe := c.O.NProbeGrid[0]
	t := metrics.NewTable(fmt.Sprintf("Fig. 16: batch latency, IVF=%d nprobe=%d", c.O.IVFGrid[0], nprobe),
		"batch size", "Faiss-CPU", "PIM-naive", "UpANNS", "UpANNS speedup vs CPU")
	sizes := []int{10, c.O.Queries / 4, c.O.Queries}
	for _, bs := range sizes {
		if bs <= 0 || bs > s.queries.Rows {
			continue
		}
		batch := subMatrix(s.queries, bs)
		cpu, _, err := c.runBaselines(s, batch, nprobe, c.O.K)
		if err != nil {
			return nil, err
		}
		nCfg := c.naiveConfig(nprobe)
		eN, err := c.getEngine(s, nCfg, buildKey(nCfg), c.O.DPUs)
		if err != nil {
			return nil, err
		}
		brN, err := eN.SearchBatch(batch)
		if err != nil {
			return nil, err
		}
		uCfg := c.upannsConfig(nprobe)
		eU, err := c.getEngine(s, uCfg, buildKey(uCfg), c.O.DPUs)
		if err != nil {
			return nil, err
		}
		brU, err := eU.SearchBatch(batch)
		if err != nil {
			return nil, err
		}
		cpuLat := cpu.Stages.Total()
		t.AddRow(fmt.Sprintf("%d", bs),
			metrics.Seconds(cpuLat),
			metrics.Seconds(brN.Timing.Total()),
			metrics.Seconds(brU.Timing.Total()),
			metrics.Ratio(cpuLat/brU.Timing.Total()))
	}
	return &Report{ID: "fig16", Title: "Batch size vs query latency",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"expected shape: UpANNS lowest latency at every batch size; its advantage grows with batch size as fixed host/transfer overheads amortize (paper Section 5.4.1)",
		}}, nil
}

// Fig17 sweeps the MRAM read granularity (vectors per DMA read).
func (c *Context) Fig17() (*Report, error) {
	s := c.getSetup(dataset.SIFT1B, c.O.IVFGrid[0])
	nprobe := c.O.NProbeGrid[len(c.O.NProbeGrid)/2]
	t := metrics.NewTable("Fig. 17: QPS vs MRAM read size (normalized to 2 vectors/read)",
		"vectors/read", "read bytes", "kernel time", "normalized QPS")
	var base float64
	for _, r := range []int{2, 4, 8, 16, 32, 48} {
		cfg := c.upannsConfig(nprobe)
		cfg.VectorsPerRead = r
		e, err := c.getEngine(s, cfg, buildKey(cfg), c.O.DPUs)
		if err != nil {
			return nil, err
		}
		br, err := e.SearchBatch(s.queries)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = br.Timing.Kernel
		}
		readBytes := 8 + r*(s.spec.M+1)*2
		t.AddRow(fmt.Sprintf("%d", r), fmt.Sprintf("%d", readBytes),
			metrics.Seconds(br.Timing.Kernel), metrics.Ratio(base/br.Timing.Kernel))
	}
	return &Report{ID: "fig17", Title: "MRAM read size vs QPS",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"expected shape: QPS rises quickly to ~16 vectors/read (the Fig. 7 latency knee), then flattens; the paper defaults to 16",
		}}, nil
}

// Fig18 sweeps the requested top-k size across backends.
func (c *Context) Fig18() (*Report, error) {
	s := c.getSetup(dataset.SIFT1B, c.O.IVFGrid[0])
	nprobe := c.O.NProbeGrid[len(c.O.NProbeGrid)/2]
	t := metrics.NewTable("Fig. 18: QPS vs k (normalized to Faiss-CPU at k=100)",
		"k", "Faiss-CPU", "Faiss-GPU", "UpANNS")
	ks := []int{1, 10, 20, 50, 100}
	type row struct{ cpu, gpu, up float64 }
	rows := make([]row, 0, len(ks))
	for _, k := range ks {
		cpu, gpu, err := c.runBaselines(s, s.queries, nprobe, k)
		if err != nil {
			return nil, err
		}
		cfg := c.upannsConfig(nprobe)
		cfg.K = k
		e, err := c.getEngine(s, cfg, buildKey(cfg), c.O.DPUs)
		if err != nil {
			return nil, err
		}
		br, err := e.SearchBatch(s.queries)
		if err != nil {
			return nil, err
		}
		gq := 0.0
		if !gpu.OOM {
			gq = gpu.QPS
		}
		rows = append(rows, row{cpu.QPS, gq, br.QPS})
	}
	base := rows[len(rows)-1].cpu // CPU at k=100
	for i, k := range ks {
		t.AddRow(fmt.Sprintf("%d", k),
			metrics.F(rows[i].cpu/base), metrics.F(rows[i].gpu/base), metrics.F(rows[i].up/base))
	}
	return &Report{ID: "fig18", Title: "Top-k size vs QPS",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"expected shape: Faiss-CPU flat in k; UpANNS and Faiss-GPU degrade slightly as k grows (larger top-k lists inflate DPU-host communication / CUDA sync); UpANNS ~2.5x CPU on average (paper Section 5.4.3)",
		}}, nil
}

// Fig19 reports the per-architecture stage breakdown at default settings.
func (c *Context) Fig19() (*Report, error) {
	rep := &Report{ID: "fig19", Title: "Query time breakdown per architecture"}
	for _, spec := range dataset.All() {
		s := c.getSetup(spec, c.O.IVFGrid[0])
		nprobe := c.O.NProbeGrid[len(c.O.NProbeGrid)/2]
		cpu, gpu, err := c.runBaselines(s, s.queries, nprobe, c.O.K)
		if err != nil {
			return nil, err
		}
		cfg := c.upannsConfig(nprobe)
		e, err := c.getEngine(s, cfg, buildKey(cfg), c.O.DPUs)
		if err != nil {
			return nil, err
		}
		br, err := e.SearchBatch(s.queries)
		if err != nil {
			return nil, err
		}
		t := metrics.NewTable(fmt.Sprintf("Fig. 19 (%s): stage shares", spec.Name),
			"backend", "filter", "LUT", "distance", "top-k", "other")
		if !cpu.OOM {
			tot := cpu.Stages.Total()
			t.AddRow("Faiss-CPU", metrics.Pct(cpu.Stages.Filter/tot), metrics.Pct(cpu.Stages.LUT/tot),
				metrics.Pct(cpu.Stages.Distance/tot), metrics.Pct(cpu.Stages.TopK/tot), metrics.Pct(cpu.Stages.Other/tot))
		}
		if !gpu.OOM {
			tot := gpu.Stages.Total()
			t.AddRow("Faiss-GPU", metrics.Pct(gpu.Stages.Filter/tot), metrics.Pct(gpu.Stages.LUT/tot),
				metrics.Pct(gpu.Stages.Distance/tot), metrics.Pct(gpu.Stages.TopK/tot), metrics.Pct(gpu.Stages.Other/tot))
		}
		lut, comb, dist, merge := br.Timing.DPUShares()
		t.AddRow("UpANNS (DPU)", "-", metrics.Pct(lut+comb), metrics.Pct(dist), metrics.Pct(merge), "-")
		rep.Tables = append(rep.Tables, t)
	}
	rep.Notes = append(rep.Notes,
		"expected shape: CPU dominated by the distance scan; GPU dominated by top-k sync; UpANNS distance share ~75-80% with top-k in single digits to ~17% (paper Section 5.4.3)")
	return rep, nil
}

// Fig20 sweeps the DPU count, fits a linear model, and extrapolates to the
// paper's full deployment, comparing against the Faiss-GPU line and the
// equal-power point.
func (c *Context) Fig20() (*Report, error) {
	s := c.getSetup(dataset.SIFT1B, c.O.IVFGrid[0])
	nprobe := c.O.NProbeGrid[len(c.O.NProbeGrid)/2]
	// Measured sweep around the configured deployment, mirroring the
	// paper's 500-900 DPU measurements on 7 DIMMs.
	counts := []int{}
	for f := 5; f <= 9; f++ {
		counts = append(counts, c.O.DPUs*f/9)
	}
	t := metrics.NewTable("Fig. 20: QPS vs DPU count", "DPUs", "QPS", "source")
	var xs, ys []float64
	for _, n := range counts {
		if n < 2 {
			continue
		}
		cfg := c.upannsConfig(nprobe)
		e, err := c.getEngine(s, cfg, buildKey(cfg), n)
		if err != nil {
			return nil, err
		}
		br, err := e.SearchBatch(s.queries)
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(n))
		ys = append(ys, br.QPS)
		t.AddRow(fmt.Sprintf("%d", n), metrics.F(br.QPS), "measured")
	}
	slope, intercept, r2 := metrics.LinReg(xs, ys)
	// Paper's extrapolation targets scaled by our-DPUs / paper-DPUs at the
	// measured top (900): 2560 DPUs (20 DIMMs) and 1654 DPUs (300 W).
	scale := float64(c.O.DPUs) / 900.0
	full := 2560 * scale
	equalPower := 1654 * scale
	predict := func(x float64) float64 { return slope*x + intercept }
	t.AddRow(fmt.Sprintf("%.0f", equalPower), metrics.F(predict(equalPower)), "predicted (300 W equal-power point)")
	t.AddRow(fmt.Sprintf("%.0f", full), metrics.F(predict(full)), "predicted (20 DIMMs / 2560-DPU equivalent)")

	_, gpu, err := c.runBaselines(s, s.queries, nprobe, c.O.K)
	if err != nil {
		return nil, err
	}
	notes := []string{
		fmt.Sprintf("linear fit: QPS = %.3f*DPUs + %.1f, r2 = %.4f (paper: regression fits the 500-900 DPU measurements almost perfectly)", slope, intercept, r2),
	}
	if !gpu.OOM {
		notes = append(notes, fmt.Sprintf("Faiss-GPU QPS = %s; predicted UpANNS at full deployment = %s (%.1fx GPU; paper reports up to 2.6x), at equal power = %s (%.1fx GPU)",
			metrics.F(gpu.QPS), metrics.F(predict(full)), predict(full)/gpu.QPS,
			metrics.F(predict(equalPower)), predict(equalPower)/gpu.QPS))
	}
	return &Report{ID: "fig20", Title: "Scalability vs DPU count",
		Tables: []*metrics.Table{t}, Notes: notes}, nil
}

// subMatrix returns the first rows of m as a view.
func subMatrix(m *vecmath.Matrix, rows int) *vecmath.Matrix {
	return vecmath.WrapMatrix(m.Data[:rows*m.Dim], rows, m.Dim)
}
