package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestUpdatesExperiment asserts the churn cycle's acceptance shape:
// after ~20% inserts + ~10% deletes applied under concurrent reads,
// recall must land within 2% of a fresh full rebuild of the live set,
// read p99 during churn (compactions included) must stay within 3x the
// no-write baseline, and at least one compaction must actually run.
func TestUpdatesExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive in -short mode")
	}
	ctx := NewContext(tinyOptions())
	art, err := ctx.UpdatesRun()
	if err != nil {
		t.Fatal(err)
	}

	// The churn cycle must be the advertised shape.
	if lo, hi := art.BaseN/6, art.BaseN/4; art.Inserts < lo || art.Inserts > hi {
		t.Errorf("inserts %d outside ~20%% of N=%d", art.Inserts, art.BaseN)
	}
	if lo, hi := art.BaseN/15, art.BaseN/7; art.Deletes < lo || art.Deletes > hi {
		t.Errorf("deletes %d outside ~10%% of N=%d", art.Deletes, art.BaseN)
	}
	if art.RecallBefore <= 0.2 {
		t.Fatalf("baseline recall %.4f implausibly low; harness misconfigured", art.RecallBefore)
	}

	// Acceptance shapes: the artifact is self-checking and the CI
	// bench-smoke job fails on the same violations. Under the race
	// detector only the content shapes are asserted — instrumentation
	// slows and reschedules everything, so the wall-clock p99 ratio is
	// only meaningful in uninstrumented builds (bench-smoke checks it).
	violations := art.Violations()
	if raceEnabled {
		kept := violations[:0]
		for _, v := range violations {
			if !strings.Contains(v, "p99") {
				kept = append(kept, v)
			}
		}
		violations = kept
	}
	if len(violations) != 0 {
		t.Fatalf("acceptance violations:\n  %s", strings.Join(violations, "\n  "))
	}

	// Explicit restatement of the headline criteria, so a regression
	// names the number that moved.
	if diff := abs(art.RecallFinal - art.RecallRebuild); diff > 0.02 {
		t.Errorf("post-churn recall %.4f deviates %.4f from fresh rebuild %.4f",
			art.RecallFinal, diff, art.RecallRebuild)
	}
	first, last := art.Points[0], art.Points[len(art.Points)-1]
	if first.Writes != 0 || last.Writes != 0 {
		t.Fatal("churn phases are not bracketed by no-write baselines")
	}
	if !raceEnabled {
		// Worse bracket as denominator: ambient load (e.g. sibling test
		// packages on shared CI cores) cancels out of the ratio.
		baselineP99 := first.P99
		if last.P99 > baselineP99 {
			baselineP99 = last.P99
		}
		for _, p := range art.Points {
			if p.Writes > 0 && p.P99 > 3*baselineP99 {
				t.Errorf("phase %q: read p99 %.6fs exceeds 3x baseline %.6fs", p.Name, p.P99, baselineP99)
			}
		}
	}
	if art.Compactions == 0 {
		t.Error("no compaction ran during churn")
	}

	// The artifact must serialize (the CI job uploads it as JSON).
	raw, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"recall_after_final_compaction", "compaction_max_seconds", "writes_per_sec"} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("artifact JSON missing %q", key)
		}
	}

	rep := updatesReport(art)
	if rep.Artifact == nil || len(rep.Tables) == 0 {
		t.Fatal("updates report malformed")
	}
	if !strings.Contains(rep.String(), "updates") {
		t.Fatal("updates report render missing id")
	}
}
