package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/ivfpq"
	"repro/internal/metrics"
	"repro/internal/tier"
	"repro/internal/topk"
	"repro/internal/workload"
)

// The tiered experiment measures the out-of-core cluster store
// (internal/tier) under deliberate memory pressure: the epoch image is
// written to disk and the hot-set budget is pinned at a quarter of it,
// so three quarters of the corpus can only be served by prefetching or
// streaming cold. A Zipf-skewed query stream then drives the store the
// way the paper's workload analysis (Fig. 4) says real traffic does —
// a small fraction of clusters absorbs most probes — and the run
// reports:
//
//   - exactness: every tiered result is compared against the in-RAM
//     index under identical options; the contract is bit-identical, so
//     the mismatch count must be zero;
//   - tail latency: steady-state p50/p95/p99 after a warm round, with
//     a generous absolute p99 ceiling as the regression tripwire;
//   - hot-set effectiveness: the steady-state hit rate of the
//     frequency-seeded hot set, which skew should keep well above the
//     1/4 a budget-sized uniform sample would earn.

// tieredP99Ceiling is the absolute steady-state p99 bound. Generous on
// purpose: it exists to catch pathological regressions (every probe
// going to disk, prefetch deadlock), not to benchmark the disk.
const tieredP99Ceiling = 250 * time.Millisecond

// tieredMinHitRate is the steady-state hot-set hit-rate floor. The
// budget alone covers 1/4 of the corpus; Zipf skew plus frequency
// seeding must beat a uniform sample's share.
const tieredMinHitRate = 0.25

// TieredArtifact is the experiment's machine-readable result
// (BENCH_tiered.json); Violations makes it self-checking.
type TieredArtifact struct {
	ImageBytes     int64   `json:"image_bytes"`
	HotBudgetBytes int64   `json:"hot_budget_bytes"`
	CorpusToBudget float64 `json:"corpus_to_budget_ratio"`
	NProbe         int     `json:"nprobe"`
	K              int     `json:"k"`

	Queries    int `json:"queries"`
	Mismatches int `json:"mismatches_vs_in_ram"`

	P50 float64 `json:"p50_seconds"`
	P95 float64 `json:"p95_seconds"`
	P99 float64 `json:"p99_seconds"`

	HitRate      float64 `json:"hot_hit_rate"`
	HotClusters  int     `json:"hot_clusters"`
	ColdReads    uint64  `json:"cold_reads"`
	ColdGBPerSec float64 `json:"cold_gb_per_sec"`
	PrefetchHits uint64  `json:"prefetch_hits"`
	Skipped      uint64  `json:"skipped_clusters"`
}

// Violations returns the acceptance-shape regressions this run exhibits
// (empty = healthy).
func (a *TieredArtifact) Violations() []string {
	var v []string
	if a.CorpusToBudget < 4 {
		v = append(v, fmt.Sprintf("tiered: corpus/budget ratio %.2f below 4; the run never left RAM pressure", a.CorpusToBudget))
	}
	if a.Mismatches > 0 {
		v = append(v, fmt.Sprintf("tiered: %d of %d queries diverged from the in-RAM index; tiered search must be bit-identical", a.Mismatches, a.Queries))
	}
	if a.P99 <= 0 {
		v = append(v, "tiered: nonpositive p99; no latency was measured")
	} else if a.P99 > tieredP99Ceiling.Seconds() {
		v = append(v, fmt.Sprintf("tiered: steady-state p99 %.6fs exceeds the %s ceiling", a.P99, tieredP99Ceiling))
	}
	if a.HitRate < tieredMinHitRate {
		v = append(v, fmt.Sprintf("tiered: steady-state hit rate %.4f below %.2f; the frequency-seeded hot set is not absorbing the skew", a.HitRate, tieredMinHitRate))
	}
	if a.Skipped > 0 {
		v = append(v, fmt.Sprintf("tiered: %d clusters skipped on a healthy disk", a.Skipped))
	}
	return v
}

// Tiered runs the experiment and renders the report.
func (c *Context) Tiered() (*Report, error) {
	art, err := c.TieredRun()
	if err != nil {
		return nil, err
	}
	return tieredReport(art), nil
}

// TieredRun executes the pressure run and returns the raw artifact
// (tests assert on it directly; Tiered renders it).
func (c *Context) TieredRun() (*TieredArtifact, error) {
	s := c.getSetup(dataset.SIFT1B, c.O.IVFGrid[len(c.O.IVFGrid)-1])
	nprobe := c.O.NProbeGrid[len(c.O.NProbeGrid)-1]
	k := c.O.K

	f, err := os.CreateTemp("", "upanns-bench-tiered-*.img")
	if err != nil {
		return nil, err
	}
	defer os.Remove(f.Name())
	defer f.Close()
	size, err := s.ix.WriteImage(f)
	if err != nil {
		return nil, err
	}
	img, err := ivfpq.OpenImage(f, size)
	if err != nil {
		return nil, err
	}

	// The pressure point: the hot set may pin at most a quarter of the
	// image, so most clusters live on disk.
	budget := size / 4
	store := tier.NewStore(tier.NewImageSource(img), tier.Config{
		HotBytes:        budget,
		PrefetchWorkers: 2,
	})
	defer store.Close()
	store.SeedFrequencies(s.freqs)
	store.Rebalance()
	tix, err := tier.NewIndex(s.ix, store)
	if err != nil {
		return nil, err
	}

	opts := ivfpq.SearchOpts{NProbe: nprobe, K: k, Quantized: true}
	qs := workload.NewQueryStream(s.queries, 1.0, c.O.Seed+77)

	// Warm round: stream one pool's worth of skewed queries so the
	// measured phase reflects steady state, then rebalance under the
	// touch counts the warm round observed.
	for i := 0; i < c.O.Queries; i++ {
		if _, _, err := tix.Search(qs.Next(), opts); err != nil {
			return nil, fmt.Errorf("tiered warm round: %w", err)
		}
	}
	store.Rebalance()
	pre := store.Stats()

	total := 3 * c.O.Queries
	lat := metrics.NewLatencyHistogram()
	mismatches := 0
	for i := 0; i < total; i++ {
		q := qs.Next()
		t0 := time.Now()
		got, _, err := tix.Search(q, opts)
		if err != nil {
			return nil, fmt.Errorf("tiered query %d: %w", i, err)
		}
		lat.Observe(time.Since(t0).Seconds())
		want, _ := s.ix.Search(q, opts)
		if !tieredEqual(got, want) {
			mismatches++
		}
	}
	post := store.Stats()

	snap := lat.Snapshot()
	art := &TieredArtifact{
		ImageBytes:     size,
		HotBudgetBytes: budget,
		CorpusToBudget: float64(size) / float64(budget),
		NProbe:         nprobe,
		K:              k,
		Queries:        total,
		Mismatches:     mismatches,
		P50:            snap.P50,
		P95:            snap.P95,
		P99:            snap.P99,
		HotClusters:    post.HotClusters,
		ColdReads:      post.ColdReads,
		PrefetchHits:   post.PrefetchHits,
		Skipped:        post.SkippedClusters,
	}
	// Steady-state hit rate: delta across the measured phase only, so
	// the warm round's unavoidable cold sweep doesn't dilute it.
	hits := post.HotHits - pre.HotHits
	if acc := hits + (post.HotMisses - pre.HotMisses); acc > 0 {
		art.HitRate = float64(hits) / float64(acc)
	}
	if post.ColdSeconds > 0 {
		art.ColdGBPerSec = float64(post.ColdBytes) / post.ColdSeconds / 1e9
	}
	return art, nil
}

// tieredEqual reports whether two result lists are bit-identical.
func tieredEqual(got, want []topk.Candidate) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
			return false
		}
	}
	return true
}

// tieredReport renders the artifact as the experiment report.
func tieredReport(a *TieredArtifact) *Report {
	rep := &Report{
		ID:       "tiered",
		Title:    "Out-of-core tiered serving: exactness, tail and hit rate at 4x budget pressure",
		Artifact: a,
	}
	t := metrics.NewTable(
		fmt.Sprintf("Tiered pressure run on %s (image %d KiB, hot budget %d KiB, nprobe %d, k %d)",
			dataset.SIFT1B.Name, a.ImageBytes>>10, a.HotBudgetBytes>>10, a.NProbe, a.K),
		"metric", "value")
	t.AddRow("queries (steady state)", fmt.Sprintf("%d", a.Queries))
	t.AddRow("mismatches vs in-RAM", fmt.Sprintf("%d", a.Mismatches))
	t.AddRow("read p50", metrics.Seconds(a.P50))
	t.AddRow("read p95", metrics.Seconds(a.P95))
	t.AddRow("read p99", metrics.Seconds(a.P99))
	t.AddRow("hot-set hit rate", fmt.Sprintf("%.4f", a.HitRate))
	t.AddRow("hot clusters pinned", fmt.Sprintf("%d", a.HotClusters))
	t.AddRow("cold reads", fmt.Sprintf("%d", a.ColdReads))
	t.AddRow("cold bandwidth", fmt.Sprintf("%.3f GB/s", a.ColdGBPerSec))
	t.AddRow("prefetch hits", fmt.Sprintf("%d", a.PrefetchHits))
	t.AddRow("skipped clusters", fmt.Sprintf("%d", a.Skipped))
	rep.Tables = append(rep.Tables, t)

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("corpus is %.1fx the hot budget: most clusters serve from disk via prefetch or cold streaming", a.CorpusToBudget),
		"expected shape: zero mismatches (tiered search is bit-identical to in-RAM), p99 under the absolute ceiling, hit rate above a uniform budget-sized sample's share")
	for _, v := range a.Violations() {
		rep.Notes = append(rep.Notes, "VIOLATION: "+v)
	}
	return rep
}
