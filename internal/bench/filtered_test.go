package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/filter"
)

// TestFilteredExperiment asserts the filter subsystem's acceptance
// shape: every returned candidate satisfies its predicate, the adaptive
// executor tracks the better of pre/post-filtering at both selectivity
// extremes, and filtered recall at >= 10% selectivity stays within 2% of
// unfiltered recall.
func TestFilteredExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive in -short mode")
	}
	ctx := NewContext(tinyOptions())
	art, err := ctx.FilteredRun()
	if err != nil {
		t.Fatal(err)
	}

	if len(art.Bands) != len(filteredFractions) {
		t.Fatalf("measured %d bands, want %d", len(art.Bands), len(filteredFractions))
	}
	if art.UnfilteredRecall <= 0.1 {
		t.Fatalf("unfiltered recall %.4f implausibly low; harness misconfigured", art.UnfilteredRecall)
	}
	for _, b := range art.Bands {
		if b.Members == 0 {
			t.Fatalf("band %g%%: no matching vectors", 100*b.Fraction)
		}
		for _, m := range []FilteredModeArtifact{b.Pre, b.Post, b.Adaptive} {
			if m.Recall < 0 || m.Recall > 1 {
				t.Fatalf("band %g%% %s: recall %.4f out of range", 100*b.Fraction, m.Mode, m.Recall)
			}
		}
	}
	// The planner must have split decisions: low bands pre, high bands
	// post (forced passes count under ForcedMode and both strategies).
	if art.Stats == nil || art.Stats.PreDecisions == 0 || art.Stats.PostDecisions == 0 {
		t.Fatalf("planner stats %+v: expected both pre and post decisions across the sweep", art.Stats)
	}

	// The artifact is self-checking; the CI bench-smoke job fails on the
	// same violations.
	if v := art.Violations(); len(v) != 0 {
		t.Fatalf("acceptance violations:\n  %s", strings.Join(v, "\n  "))
	}

	// The artifact (including the stats snapshot) must round-trip as the
	// JSON CI consumes.
	raw, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	var back FilteredArtifact
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.UnfilteredRecall != art.UnfilteredRecall || len(back.Bands) != len(art.Bands) {
		t.Fatal("artifact does not round-trip through JSON")
	}
}

// TestFilteredViolationDetection proves the self-checks actually fire on
// regressed shapes (a gate that cannot fail is not a gate).
func TestFilteredViolationDetection(t *testing.T) {
	healthy := FilteredArtifact{
		BaseN: 1000, K: 10, UnfilteredRecall: 0.95,
		Stats: &filter.StatsSnapshot{},
		Bands: []FilteredBandArtifact{
			{Fraction: 0.001, Pre: mode("pre", 0.9, 1e-3), Post: mode("post", 0.5, 5e-3), Adaptive: mode("adaptive", 0.9, 1.1e-3)},
			{Fraction: 0.5, Pre: mode("pre", 0.94, 4e-3), Post: mode("post", 0.94, 2e-3), Adaptive: mode("adaptive", 0.94, 2.2e-3)},
		},
	}
	if v := healthy.Violations(); len(v) != 0 {
		t.Fatalf("healthy artifact flagged: %v", v)
	}

	slowAdaptive := healthy
	slowAdaptive.Bands = append([]FilteredBandArtifact(nil), healthy.Bands...)
	slowAdaptive.Bands[0].Adaptive.P99 = 0.1 // far above the better strategy
	if v := slowAdaptive.Violations(); len(v) == 0 {
		t.Fatal("adaptive p99 regression not flagged")
	}

	lowRecall := healthy
	lowRecall.Bands = append([]FilteredBandArtifact(nil), healthy.Bands...)
	lowRecall.Bands[1].Adaptive.Recall = 0.8 // > 2% below unfiltered 0.95
	if v := lowRecall.Violations(); len(v) == 0 {
		t.Fatal("filtered recall floor violation not flagged")
	}

	leak := healthy
	leak.Bands = append([]FilteredBandArtifact(nil), healthy.Bands...)
	leak.Bands[0].Pre.Mismatches = 2
	if v := leak.Violations(); len(v) == 0 {
		t.Fatal("predicate mismatch not flagged")
	}
}

func mode(name string, recall, p99 float64) FilteredModeArtifact {
	return FilteredModeArtifact{Mode: name, Recall: recall, P50: p99 / 2, P99: p99}
}
