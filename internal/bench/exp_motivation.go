package bench

import (
	"fmt"
	"sort"

	"repro/internal/archmodel"
	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/hnsw"
	"repro/internal/ivfpq"
	"repro/internal/metrics"
	"repro/internal/pim"
	"repro/internal/topk"
)

// Table1 prints the evaluated hardware platforms (paper Table 1).
func (c *Context) Table1() (*Report, error) {
	cpu, gpu := archmodel.CPU(), archmodel.GPU()
	spec := pim.DefaultSpec()
	t := metrics.NewTable("Table 1: evaluated hardware",
		"platform", "memory", "peak power", "bandwidth", "price")
	t.AddRow(cpu.Name, "128 GB", "190 W", "85.3 GB/s", "$1,400")
	t.AddRow(gpu.Name, "80 GB", "300 W", "1935 GB/s", "$20,000")
	t.AddRow("UPMEM PIM (7 DIMMs, 896 DPUs)",
		fmt.Sprintf("%d GB", int64(spec.NumDPUs())*int64(spec.MRAMPerDPU)>>30),
		fmt.Sprintf("%.0f W", spec.PeakWatts()),
		"612.5 GB/s", "$2,800")
	sim := metrics.NewTable("Simulated deployment used by this harness",
		"parameter", "value")
	sim.AddRow("DPUs", metrics.F(float64(c.O.DPUs)))
	sim.AddRow("DPU clock", "350 MHz")
	sim.AddRow("tasklets/DPU (max)", "24")
	sim.AddRow("MRAM/DPU", "64 MB")
	sim.AddRow("WRAM/DPU", "64 KB")
	sim.AddRow("base vectors", metrics.F(float64(c.O.N)))
	sim.AddRow("batch size", metrics.F(float64(c.O.Queries)))
	return &Report{ID: "table1", Title: "Hardware specifications",
		Tables: []*metrics.Table{t, sim}}, nil
}

// Fig1 reproduces the motivation breakdown: where CPU and GPU time goes as
// the dataset scales. Paper-scale rows (1M/100M/1B) are computed from the
// roofline models with the Fig. 1 parameters (|C|=4096, nprobe=32); a
// measured row from a real functional run at the harness scale validates
// the model's counting.
func (c *Context) Fig1() (*Report, error) {
	const (
		nlist  = 4096
		nprobe = 32
		dim    = 128
		m      = 16
		nq     = 1000
	)
	mkWorkload := func(n float64) archmodel.Workload {
		clusterSize := n / nlist
		cands := float64(nq) * nprobe * clusterSize
		return archmodel.Workload{
			Queries:     nq,
			FilterFlops: float64(nq) * nlist * dim * 3,
			FilterBytes: float64(nq) * nlist * dim * 4,
			LUTFlops:    float64(nq) * nprobe * m * 256 * (dim / m) * 3,
			LUTBytes:    float64(nq) * nprobe * m * 256 * (dim / m) * 4,
			ScanBytes:   cands * m,
			ScanFlops:   cands * m * 2,
			Candidates:  cands,
			SelectionKs: 10,
			IndexBytes:  int64(n) * int64(m+8),
		}
	}
	rep := &Report{ID: "fig1", Title: "CPU/GPU stage breakdown vs dataset scale"}
	for _, dev := range []archmodel.Device{archmodel.CPU(), archmodel.GPU()} {
		t := metrics.NewTable(fmt.Sprintf("Fig. 1 (%s): stage share of batch time", dev.Name),
			"scale", "filter", "LUT", "distance", "top-k", "batch time")
		for _, sc := range []struct {
			label string
			n     float64
		}{{"1M", 1e6}, {"100M", 1e8}, {"1B", 1e9}} {
			st, ok := dev.Time(mkWorkload(sc.n))
			if !ok {
				t.AddRow(sc.label, "OOM")
				continue
			}
			tot := st.Total()
			t.AddRow(sc.label,
				metrics.Pct(st.Filter/tot), metrics.Pct(st.LUT/tot),
				metrics.Pct(st.Distance/tot), metrics.Pct(st.TopK/tot),
				metrics.Seconds(tot))
		}
		rep.Tables = append(rep.Tables, t)
	}

	// Measured validation at harness scale.
	s := c.getSetup(dataset.SIFT1B, c.O.IVFGrid[0])
	cpuRes, gpuRes, err := c.runBaselines(s, s.queries, c.O.NProbeGrid[len(c.O.NProbeGrid)-1], c.O.K)
	if err != nil {
		return nil, err
	}
	mt := metrics.NewTable(fmt.Sprintf("Measured functional run (%s, N=%d)", s.spec.Name, c.O.N),
		"backend", "filter", "LUT", "distance", "top-k")
	for _, br := range []struct {
		name string
		r    *archmodel.StageTimes
	}{{"Faiss-CPU", &cpuRes.Stages}, {"Faiss-GPU", &gpuRes.Stages}} {
		if br.r == nil {
			continue
		}
		tot := br.r.Total()
		if tot == 0 {
			continue
		}
		mt.AddRow(br.name,
			metrics.Pct(br.r.Filter/tot), metrics.Pct(br.r.LUT/tot),
			metrics.Pct(br.r.Distance/tot), metrics.Pct(br.r.TopK/tot))
	}
	rep.Tables = append(rep.Tables, mt)
	rep.Notes = append(rep.Notes,
		"expected shape: CPU bottleneck shifts from LUT construction (1M) to the memory-bound distance scan (1B); GPU top-k share grows past 64% at 1B")
	return rep, nil
}

// Fig4 reports the skew of cluster access frequency, cluster size and
// workload (size x frequency) on the SPACEV-like dataset.
func (c *Context) Fig4() (*Report, error) {
	s := c.getSetup(dataset.SPACEV1B, c.O.IVFGrid[len(c.O.IVFGrid)-1])
	sizes := s.ix.ListSizes()
	freqs := s.freqs

	quantiles := func(vals []float64) (maxV, p90, p50, minV float64) {
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		n := len(sorted)
		return sorted[n-1], sorted[n*9/10], sorted[n/2], sorted[0]
	}
	toF := func(ints []int) []float64 {
		out := make([]float64, len(ints))
		for i, v := range ints {
			out[i] = float64(v)
		}
		return out
	}
	work := make([]float64, len(sizes))
	for i := range work {
		work[i] = float64(sizes[i]) * freqs[i]
	}

	t := metrics.NewTable(fmt.Sprintf("Fig. 4: per-cluster distribution skew (%s, %d clusters)", s.spec.Name, len(sizes)),
		"distribution", "max", "p90", "median", "min", "max/median")
	for _, row := range []struct {
		name string
		vals []float64
	}{
		{"access frequency", freqs},
		{"cluster size", toF(sizes)},
		{"workload (size x freq)", work},
	} {
		maxV, p90, p50, minV := quantiles(row.vals)
		ratio := maxV / maxFloat(p50, 1e-9)
		t.AddRow(row.name, metrics.F(maxV), metrics.F(p90), metrics.F(p50), metrics.F(minV), metrics.Ratio(ratio))
	}
	return &Report{ID: "fig4", Title: "Cluster access/size/workload skew",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"paper reports ~500x access skew and up to 10^6x size skew at billion scale; the synthetic generator plants the same heavy-tailed shape at reduced magnitude",
		}}, nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Fig7 prints the modelled MRAM read latency curve.
func (c *Context) Fig7() (*Report, error) {
	spec := pim.DefaultSpec()
	t := metrics.NewTable("Fig. 7: MRAM read latency vs transfer size",
		"bytes", "latency (cycles)", "cycles/byte")
	for b := 8; b <= spec.DMAMaxBytes; b *= 2 {
		lat := spec.DMALatency(b)
		t.AddRow(fmt.Sprintf("%d", b), metrics.F(lat), metrics.F(lat/float64(b)))
	}
	return &Report{ID: "fig7", Title: "MRAM read latency vs transfer size",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"expected shape: near-flat below ~256 B, close to linear beyond — small reads waste latency, huge reads waste WRAM (Section 4.2.2)",
		}}, nil
}

// Intro reproduces the introduction's motivating comparison: graph-based
// HNSW needs 60-450 bytes of link structure per vertex plus full-precision
// vectors (~450 GB at a billion vertices), while compression-based IVFPQ
// stores M code bytes per vector — the reason the paper builds on IVFPQ.
// Both methods are built on the same data and queried for recall.
func (c *Context) Intro() (*Report, error) {
	n := c.O.N / 4
	if n > 12000 {
		n = 12000
	}
	spec := dataset.SIFT1B
	ds := dataset.Generate(spec, n, c.O.Seed+301)
	queries := ds.Queries(50, c.O.Seed+303)
	truth := dataset.GroundTruth(ds.Vectors, queries, 10)

	// HNSW.
	g := hnsw.New(spec.Dim, hnsw.DefaultConfig())
	for i := 0; i < ds.Vectors.Rows; i++ {
		g.Add(ds.Vectors.Row(i))
	}
	hres := make([][]topk.Candidate, queries.Rows)
	for i := 0; i < queries.Rows; i++ {
		hres[i] = g.Search(queries.Row(i), 10)
	}
	hnswRecall := dataset.Recall(hres, truth)
	hnswPerVec := float64(g.MemoryBytes()) / float64(n)

	// IVFPQ at the paper's configuration (full 256-entry codebooks).
	ix := ivfpq.Train(ds.Vectors, ivfpq.Params{
		NList: c.O.IVFGrid[0], M: spec.M, Seed: c.O.Seed, TrainSub: c.O.TrainSub,
	})
	ix.Add(ds.Vectors, 0)
	ires := make([][]topk.Candidate, queries.Rows)
	nprobe := c.O.NProbeGrid[len(c.O.NProbeGrid)-1]
	for i := 0; i < queries.Rows; i++ {
		ires[i], _ = ix.Search(queries.Row(i), ivfpq.SearchOpts{NProbe: nprobe, K: 10})
	}
	ivfpqRecall := dataset.Recall(ires, truth)
	ivfpqPerVec := float64(baseline.IndexBytes(ix)) / float64(n)

	const billion = 1e9
	t := metrics.NewTable(fmt.Sprintf("Intro: graph vs compression at N=%d (SIFT1B-like)", n),
		"method", "bytes/vector", "memory @1B (extrapolated)", "recall@10")
	t.AddRow("HNSW (M=16)", metrics.F(hnswPerVec),
		fmt.Sprintf("%.0f GB", hnswPerVec*billion/1e9), metrics.Pct(hnswRecall))
	t.AddRow(fmt.Sprintf("IVFPQ (M=%d, nprobe=%d)", spec.M, nprobe), metrics.F(ivfpqPerVec),
		fmt.Sprintf("%.0f GB", ivfpqPerVec*billion/1e9), metrics.Pct(ivfpqRecall))
	return &Report{ID: "intro", Title: "Graph vs compression motivation",
		Tables: []*metrics.Table{t},
		Notes: []string{
			fmt.Sprintf("HNSW link overhead measured at %.0f B/vertex (paper: 60-450 B); full-precision vectors add %d B", g.LinkBytesPerVertex(), spec.Dim*4),
			"expected shape: HNSW wins recall at this scale but its billion-scale footprint is impractical (paper: up to 450 GB), while IVFPQ stays tens of GB — the paper's reason to build on IVFPQ",
		}}, nil
}
