package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/mutable"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/workload"
)

// The quality experiment validates the online search-quality plane
// (internal/obs shadow-oracle sampling) on two axes:
//
//   - estimator accuracy: the plane head-samples a strict subset of a
//     query stream and must land its Wilson interval on the deployment's
//     true recall, measured offline by exact oracle re-execution of the
//     *full* stream;
//   - sampling overhead: the serving path with the plane live at its
//     production sampling rate must stay within 3% of the plane-off
//     mean and p99 latency under identical closed-loop load — shadow
//     executions run off the hot path, so their only permitted cost is
//     one atomic on the request path plus background CPU contention.

// qualitySampleEvery is the head-sampling rate of the accuracy phase: a
// strict subset, so the estimate is a genuine extrapolation rather than
// a restatement of the measured population.
const qualitySampleEvery = 4

// qualityOverheadSampleEvery is the production default sampling rate
// (-quality-sample's documented operating point) used by the overhead
// pair.
const qualityOverheadSampleEvery = 64

// QualityAccuracyArtifact is the estimator-vs-truth measurement.
type QualityAccuracyArtifact struct {
	Queries     int     `json:"queries"`
	SampleEvery int     `json:"sample_every"`
	Samples     int64   `json:"samples"`
	TrueRecall  float64 `json:"true_recall"`
	Estimate    float64 `json:"estimate"`
	CILow       float64 `json:"ci_low"`
	CIHigh      float64 `json:"ci_high"`
}

// QualityOverheadArtifact is the plane-off/plane-on latency pair.
type QualityOverheadArtifact struct {
	SampleEvery    int     `json:"sample_every"`
	MeanOffSeconds float64 `json:"mean_off_seconds"`
	MeanOnSeconds  float64 `json:"mean_on_seconds"`
	P99OffSeconds  float64 `json:"p99_off_seconds"`
	P99OnSeconds   float64 `json:"p99_on_seconds"`
	// OverheadPct is the relative mean-latency cost of the live plane,
	// (on/off - 1) * 100.
	OverheadPct float64 `json:"mean_overhead_pct"`
	// Shadowed is the number of shadow executions the on-side's best run
	// performed (evidence the measured side actually sampled).
	Shadowed uint64 `json:"shadowed"`
}

// QualityArtifact is the experiment's machine-readable result
// (BENCH_quality.json); Violations makes it self-checking.
type QualityArtifact struct {
	Accuracy *QualityAccuracyArtifact `json:"accuracy"`
	Overhead *QualityOverheadArtifact `json:"overhead"`
}

// Violations returns the acceptance-shape regressions this run exhibits
// (empty = healthy): the true recall must sit inside the estimator's
// Wilson interval (widened by a smoke-scale slack — at tiny sample
// counts the subset-vs-population recall gap has its own variance on
// top of the binomial term the interval models), and the plane must
// cost under 3% of mean and p99 latency. The absolute terms are the
// smoke-scale noise floors: the hot-path cost is one atomic add per
// request, so a real regression shows up as milliseconds, while
// scheduler jitter on a loaded host routinely moves a few-millisecond
// mean by a few hundred microseconds.
func (a *QualityArtifact) Violations() []string {
	var v []string
	if a.Accuracy == nil || a.Overhead == nil {
		return append(v, "quality: incomplete run")
	}
	acc := a.Accuracy
	if acc.Samples == 0 {
		v = append(v, "quality: estimator saw no samples")
	} else {
		const slack = 0.05
		if acc.TrueRecall < acc.CILow-slack || acc.TrueRecall > acc.CIHigh+slack {
			v = append(v, fmt.Sprintf("quality: true recall %.4f outside estimator CI [%.4f, %.4f] (+/- %.2f slack)",
				acc.TrueRecall, acc.CILow, acc.CIHigh, slack))
		}
	}
	o := a.Overhead
	if o.Shadowed == 0 {
		v = append(v, "quality: overhead on-side performed no shadow executions")
	}
	if limit := o.MeanOffSeconds*1.03 + 500e-6; o.MeanOnSeconds > limit {
		v = append(v, fmt.Sprintf("quality: sampling mean overhead %.1f%% (%.6fs -> %.6fs) exceeds the 3%% budget",
			o.OverheadPct, o.MeanOffSeconds, o.MeanOnSeconds))
	}
	if limit := o.P99OffSeconds*1.03 + 2e-3; o.P99OnSeconds > limit {
		v = append(v, fmt.Sprintf("quality: sampling p99 %.6fs -> %.6fs exceeds the 3%% budget",
			o.P99OffSeconds, o.P99OnSeconds))
	}
	return v
}

// Quality runs the experiment and renders the report.
func (c *Context) Quality() (*Report, error) {
	art, err := c.QualityRun()
	if err != nil {
		return nil, err
	}
	return qualityReport(art), nil
}

// QualityRun executes both phases and returns the raw artifact (tests
// assert on it directly; Quality renders it).
func (c *Context) QualityRun() (*QualityArtifact, error) {
	s := c.getSetup(dataset.SIFT1B, c.O.IVFGrid[0])
	nprobe := c.O.NProbeGrid[0]
	k := c.O.K

	// A private index build: the quality phases must not share mutable
	// state with experiments that churn the cached setup's index.
	ix := s.ix.CloneStructure()
	ix.Add(s.ds.Vectors, 0)
	mcfg := mutable.ServingConfig(nprobe, k, c.O.DPUs, c.O.Seed)
	mcfg.CheckInterval = -1
	u, err := mutable.New(ix, s.freqs, mcfg)
	if err != nil {
		return nil, err
	}
	defer u.Close()

	acc, err := c.qualityAccuracy(u, s, k)
	if err != nil {
		return nil, err
	}
	over, err := c.qualityOverheadPair(u, s, k)
	if err != nil {
		return nil, err
	}
	return &QualityArtifact{Accuracy: acc, Overhead: over}, nil
}

// qualityAccuracy drives every harness query through a quality-enabled
// server (head-sampling one in qualitySampleEvery), then re-executes
// the whole stream against the exact oracle offline to score the
// estimator against the population truth it extrapolates.
func (c *Context) qualityAccuracy(u *mutable.UpdatableIndex, s *setup, k int) (*QualityAccuracyArtifact, error) {
	quality := obs.NewQuality(obs.QualityConfig{
		ShardID: "bench", SampleEvery: qualitySampleEvery, QueueDepth: 4096,
	}, u.QualityOracle(), u.ClusterOccupancy, nil)
	defer quality.Close()
	srv, err := serve.NewServer(serve.Config{K: k, Quality: quality}, u)
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	ctx := context.Background()
	live := make([][]int64, s.queries.Rows)
	for qi := 0; qi < s.queries.Rows; qi++ {
		res, err := srv.Search(ctx, s.queries.Row(qi))
		if err != nil {
			return nil, err
		}
		ids := make([]int64, len(res))
		for i, cand := range res {
			ids[i] = cand.ID
		}
		live[qi] = ids
	}
	if !quality.Drain(60 * time.Second) {
		return nil, fmt.Errorf("quality: shadow queue did not drain")
	}

	// Population truth: exact oracle re-execution of every query, same
	// matching rule as the estimator (|live ∩ truth| / k).
	total := 0.0
	for qi, ids := range live {
		res, err := u.SearchOracle(s.queries.Row(qi), k, nil)
		if err != nil {
			return nil, err
		}
		truth := make(map[int64]bool, len(res.Truth))
		for _, cand := range res.Truth {
			truth[cand.ID] = true
		}
		hit := 0
		for _, id := range ids {
			if truth[id] {
				hit++
			}
		}
		total += float64(hit) / float64(k)
	}

	snap := quality.Snapshot()
	return &QualityAccuracyArtifact{
		Queries:     s.queries.Rows,
		SampleEvery: qualitySampleEvery,
		Samples:     snap.Recall.Samples,
		TrueRecall:  total / float64(s.queries.Rows),
		Estimate:    snap.Recall.Estimate,
		CILow:       snap.Recall.CILow,
		CIHigh:      snap.Recall.CIHigh,
	}, nil
}

// qualityOverheadPair drives the batch=8 serving policy over the
// mutable deployment under identical closed-loop load with the quality
// plane off and on (production sampling rate, fresh plane per on-rep so
// estimator state never carries over). Off/on passes interleave with
// alternating within-round order and each side keeps its best (lowest)
// numbers — the same noise discipline as servingOverheadPair, and for
// the same reason: the 3% budget is a property of the code, not of the
// machine's moment.
func (c *Context) qualityOverheadPair(u *mutable.UpdatableIndex, s *setup, k int) (*QualityOverheadArtifact, error) {
	total := 10 * c.O.Queries
	if total < 400 {
		total = 400
	}
	perClient := (total + servingClients - 1) / servingClients

	reps := 5
	if raceEnabled {
		reps = 1
	}
	meanOff, meanOn, p99Off, p99On := -1.0, -1.0, -1.0, -1.0
	var shadowed uint64
	run := func(on bool, mean, p99 *float64) error {
		var quality *obs.Quality
		if on {
			quality = obs.NewQuality(obs.QualityConfig{
				ShardID: "bench", SampleEvery: qualityOverheadSampleEvery, QueueDepth: 1024,
			}, u.QualityOracle(), u.ClusterOccupancy, nil)
		}
		srv, err := serve.NewServer(serve.Config{
			K:              k,
			MaxBatch:       8,
			MaxLinger:      200 * time.Microsecond,
			QueueDepth:     4096,
			DefaultTimeout: 60 * time.Second,
			Quality:        quality,
		}, u)
		if err != nil {
			quality.Close()
			return err
		}

		var wg sync.WaitGroup
		var errMu sync.Mutex
		var firstErr error
		for w := 0; w < servingClients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				stream := workload.NewQueryStream(s.queries, 1.0, c.O.Seed+uint64(w)*7919)
				for i := 0; i < perClient; i++ {
					if _, err := srv.Search(context.Background(), stream.Next()); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}(w)
		}
		wg.Wait()
		srv.Close()
		if quality != nil {
			if !quality.Drain(30 * time.Second) {
				quality.Close()
				return fmt.Errorf("quality: overhead run shadow queue did not drain")
			}
			snap := quality.Snapshot()
			quality.Close()
			if snap.Executed > shadowed {
				shadowed = snap.Executed
			}
		}
		if firstErr != nil {
			return firstErr
		}
		st := srv.Stats()
		if *mean < 0 || st.Latency.Mean < *mean {
			*mean = st.Latency.Mean
		}
		if *p99 < 0 || st.Latency.P99 < *p99 {
			*p99 = st.Latency.P99
		}
		return nil
	}
	runOff := func() error { return run(false, &meanOff, &p99Off) }
	runOn := func() error { return run(true, &meanOn, &p99On) }
	for i := 0; i < reps; i++ {
		first, second := runOff, runOn
		if i%2 == 1 {
			first, second = runOn, runOff
		}
		if err := first(); err != nil {
			return nil, err
		}
		if err := second(); err != nil {
			return nil, err
		}
	}
	return &QualityOverheadArtifact{
		SampleEvery:    qualityOverheadSampleEvery,
		MeanOffSeconds: meanOff, MeanOnSeconds: meanOn,
		P99OffSeconds: p99Off, P99OnSeconds: p99On,
		OverheadPct: (meanOn/meanOff - 1) * 100,
		Shadowed:    shadowed,
	}, nil
}

// qualityReport renders the artifact as the experiment report.
func qualityReport(a *QualityArtifact) *Report {
	rep := &Report{
		ID:       "quality",
		Title:    "Search-quality plane: shadow-estimator accuracy and sampling overhead",
		Artifact: a,
	}
	acc, o := a.Accuracy, a.Overhead
	t := metrics.NewTable(
		fmt.Sprintf("Shadow-oracle estimator (%s, 1-in-%d head sampling)", dataset.SIFT1B.Name, acc.SampleEvery),
		"queries", "samples", "true recall", "estimate", "CI low", "CI high")
	t.AddRow(
		fmt.Sprintf("%d", acc.Queries),
		fmt.Sprintf("%d", acc.Samples),
		fmt.Sprintf("%.4f", acc.TrueRecall),
		fmt.Sprintf("%.4f", acc.Estimate),
		fmt.Sprintf("%.4f", acc.CILow),
		fmt.Sprintf("%.4f", acc.CIHigh))
	rep.Tables = append(rep.Tables, t)

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("estimator vs population truth: estimate %.4f (CI [%.4f, %.4f]) vs true %.4f from exact re-execution of the full stream",
			acc.Estimate, acc.CILow, acc.CIHigh, acc.TrueRecall),
		fmt.Sprintf("sampling overhead at 1-in-%d (%d shadows): mean %s (off) -> %s (on), %.1f%% (budget 3%%); p99 %s -> %s",
			o.SampleEvery, o.Shadowed,
			metrics.Seconds(o.MeanOffSeconds), metrics.Seconds(o.MeanOnSeconds), o.OverheadPct,
			metrics.Seconds(o.P99OffSeconds), metrics.Seconds(o.P99OnSeconds)),
		"expected shape: true recall inside the Wilson interval; plane-on mean and p99 within 3% of plane-off")
	for _, v := range a.Violations() {
		rep.Notes = append(rep.Notes, "VIOLATION: "+v)
	}
	return rep
}
