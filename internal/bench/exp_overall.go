package bench

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/ivfpq"
	"repro/internal/metrics"
	"repro/internal/topk"
	"repro/internal/vecmath"
)

// gridResult caches one (dataset, IVF, nprobe) sweep point.
type gridResult struct {
	cpuQPS, gpuQPS, naiveQPS, upQPS float64
	gpuOOM                          bool
	naiveBalance, upBalance         float64
	upQPSW, gpuQPSW                 float64
}

// runGridPoint executes all four systems for one setting, caching the
// outcome so Figs. 10-12 share one sweep.
func (c *Context) runGridPoint(spec dataset.Spec, nlist, nprobe int) (*gridResult, error) {
	key := fmt.Sprintf("%s/%d/%d", spec.Name, nlist, nprobe)
	if g, ok := c.grid[key]; ok {
		return g, nil
	}
	g, err := c.runGridPointUncached(spec, nlist, nprobe)
	if err != nil {
		return nil, err
	}
	c.grid[key] = g
	return g, nil
}

func (c *Context) runGridPointUncached(spec dataset.Spec, nlist, nprobe int) (*gridResult, error) {
	s := c.getSetup(spec, nlist)
	cpu, gpu, err := c.runBaselines(s, s.queries, nprobe, c.O.K)
	if err != nil {
		return nil, err
	}
	naiveCfg := c.naiveConfig(nprobe)
	eN, err := c.getEngine(s, naiveCfg, buildKey(naiveCfg), c.O.DPUs)
	if err != nil {
		return nil, err
	}
	brN, err := eN.SearchBatch(s.queries)
	if err != nil {
		return nil, err
	}
	upCfg := c.upannsConfig(nprobe)
	eU, err := c.getEngine(s, upCfg, buildKey(upCfg), c.O.DPUs)
	if err != nil {
		return nil, err
	}
	brU, err := eU.SearchBatch(s.queries)
	if err != nil {
		return nil, err
	}
	g := &gridResult{
		cpuQPS:       cpu.QPS,
		naiveQPS:     brN.QPS,
		upQPS:        brU.QPS,
		naiveBalance: brN.Balance,
		upBalance:    brU.Balance,
	}
	pimWatts := c.pimWatts()
	g.upQPSW = brU.QPS / pimWatts
	if gpu.OOM {
		g.gpuOOM = true
	} else {
		g.gpuQPS = gpu.QPS
		g.gpuQPSW = gpu.QPSW
	}
	return g, nil
}

// pimWatts scales the per-DIMM peak power to the simulated DPU count.
func (c *Context) pimWatts() float64 {
	perDPU := 23.22 / 128
	return perDPU * float64(c.O.DPUs)
}

// Fig10 compares UpANNS against Faiss-CPU and PIM-naive across the
// dataset x IVF x nprobe grid, normalized to Faiss-CPU at the smallest
// IVF and largest nprobe (the paper's normalization).
func (c *Context) Fig10() (*Report, error) {
	rep := &Report{ID: "fig10", Title: "QPS vs Faiss-CPU and PIM-naive"}
	var speedups []float64
	for _, spec := range dataset.All() {
		t := metrics.NewTable(
			fmt.Sprintf("Fig. 10 (%s): QPS normalized to Faiss-CPU @ IVF=%d nprobe=%d",
				spec.Name, c.O.IVFGrid[0], c.O.NProbeGrid[len(c.O.NProbeGrid)-1]),
			"IVF", "nprobe", "Faiss-CPU", "PIM-naive", "UpANNS", "UpANNS/CPU")
		gBase, err := c.runGridPoint(spec, c.O.IVFGrid[0], c.O.NProbeGrid[len(c.O.NProbeGrid)-1])
		if err != nil {
			return nil, err
		}
		base := gBase.cpuQPS
		for _, nlist := range c.O.IVFGrid {
			for _, nprobe := range c.O.NProbeGrid {
				g, err := c.runGridPoint(spec, nlist, nprobe)
				if err != nil {
					return nil, err
				}
				sp := g.upQPS / g.cpuQPS
				speedups = append(speedups, sp)
				t.AddRow(fmt.Sprintf("%d", nlist), fmt.Sprintf("%d", nprobe),
					metrics.F(g.cpuQPS/base), metrics.F(g.naiveQPS/base),
					metrics.F(g.upQPS/base), metrics.Ratio(sp))
			}
		}
		rep.Tables = append(rep.Tables, t)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("UpANNS/Faiss-CPU speedup range %.1fx-%.1fx (paper: 1.6x-4.3x at billion scale); geometric mean %.1fx",
			minFloat(speedups), maxSlice(speedups), metrics.GeoMean(speedups)),
		"expected shape: UpANNS > PIM-naive > Faiss-CPU everywhere; QPS falls as nprobe grows; UpANNS' edge over the CPU widens as IVF grows (smaller clusters hurt CPU cache locality, not MRAM)")
	return rep, nil
}

// Fig11 reports the max/avg DPU workload ratio with and without the
// PIM-aware distribution.
func (c *Context) Fig11() (*Report, error) {
	rep := &Report{ID: "fig11", Title: "Workload balance (max/avg) ablation"}
	for _, spec := range dataset.All() {
		t := metrics.NewTable(fmt.Sprintf("Fig. 11 (%s): max/avg DPU execution cycles", spec.Name),
			"IVF", "nprobe", "PIM-naive", "UpANNS")
		for _, nlist := range c.O.IVFGrid {
			for _, nprobe := range c.O.NProbeGrid {
				g, err := c.runGridPoint(spec, nlist, nprobe)
				if err != nil {
					return nil, err
				}
				t.AddRow(fmt.Sprintf("%d", nlist), fmt.Sprintf("%d", nprobe),
					metrics.F(g.naiveBalance), metrics.F(g.upBalance))
			}
		}
		rep.Tables = append(rep.Tables, t)
	}
	rep.Notes = append(rep.Notes,
		"expected shape: UpANNS close to 1 everywhere; PIM-naive well above 1, worst at small IVF and small nprobe (paper Section 5.3.1)")
	return rep, nil
}

// Fig12 compares UpANNS with Faiss-GPU on QPS and QPS/W.
func (c *Context) Fig12() (*Report, error) {
	rep := &Report{ID: "fig12", Title: "QPS and QPS/W vs Faiss-GPU"}
	for _, spec := range dataset.All() {
		t := metrics.NewTable(fmt.Sprintf("Fig. 12 (%s)", spec.Name),
			"IVF", "nprobe", "GPU QPS", "UpANNS QPS", "GPU QPS/W", "UpANNS QPS/W", "QPS/W ratio")
		for _, nlist := range c.O.IVFGrid {
			for _, nprobe := range c.O.NProbeGrid {
				g, err := c.runGridPoint(spec, nlist, nprobe)
				if err != nil {
					return nil, err
				}
				if g.gpuOOM {
					t.AddRow(fmt.Sprintf("%d", nlist), fmt.Sprintf("%d", nprobe),
						"OOM(X)", metrics.F(g.upQPS), "-", metrics.F(g.upQPSW), "-")
					continue
				}
				t.AddRow(fmt.Sprintf("%d", nlist), fmt.Sprintf("%d", nprobe),
					metrics.F(g.gpuQPS), metrics.F(g.upQPS),
					metrics.F(g.gpuQPSW), metrics.F(g.upQPSW),
					metrics.Ratio(g.upQPSW/g.gpuQPSW))
			}
		}
		rep.Tables = append(rep.Tables, t)
	}
	rep.Notes = append(rep.Notes,
		"expected shape: UpANNS QPS comparable to Faiss-GPU, with >2x QPS/W (paper: 2.3x average); DEEP1B marks the GPU out-of-memory at paper scale (blue X in the paper)")
	return rep, nil
}

// RecallCheck validates the paper's accuracy claim: UpANNS returns the
// same neighbors as the quantized host reference, and recall against
// exact ground truth matches the plain IVFPQ pipeline.
func (c *Context) RecallCheck() (*Report, error) {
	t := metrics.NewTable("Accuracy validation (recall@k vs exact ground truth)",
		"dataset", "float IVFPQ", "quantized IVFPQ", "UpANNS", "UpANNS==quantized")
	for _, spec := range dataset.All() {
		s := c.getSetup(spec, c.O.IVFGrid[0])
		nprobe := c.O.NProbeGrid[len(c.O.NProbeGrid)-1]
		nq := s.queries.Rows
		if nq > 50 {
			nq = 50
		}
		queries := vecmath.WrapMatrix(s.queries.Data[:nq*s.queries.Dim], nq, s.queries.Dim)
		truth := dataset.GroundTruth(s.ds.Vectors, queries, c.O.K)

		fl := make([][]topk.Candidate, nq)
		qt := make([][]topk.Candidate, nq)
		for qi := 0; qi < nq; qi++ {
			fl[qi], _ = s.ix.Search(queries.Row(qi), ivfpq.SearchOpts{NProbe: nprobe, K: c.O.K})
			qt[qi], _ = s.ix.Search(queries.Row(qi), ivfpq.SearchOpts{NProbe: nprobe, K: c.O.K, Quantized: true})
		}
		cfg := c.upannsConfig(nprobe)
		e, err := c.getEngine(s, cfg, buildKey(cfg), c.O.DPUs)
		if err != nil {
			return nil, err
		}
		br, err := e.SearchBatch(queries)
		if err != nil {
			return nil, err
		}

		match := true
		for qi := 0; qi < nq && match; qi++ {
			got, want := br.Results[qi], qt[qi]
			if len(got) != len(want) {
				match = false
				break
			}
			for i := range got {
				if got[i].Dist != want[i].Dist {
					match = false
					break
				}
			}
		}
		t.AddRow(spec.Name,
			metrics.Pct(dataset.Recall(fl, truth)),
			metrics.Pct(dataset.Recall(qt, truth)),
			metrics.Pct(dataset.Recall(br.Results, truth)),
			fmt.Sprintf("%v", match))
	}
	return &Report{ID: "recall", Title: "Accuracy validation across backends",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"the paper states the optimizations do not impact accuracy: UpANNS distances must equal the quantized host reference exactly",
		}}, nil
}

func minFloat(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxSlice(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
