package bench

import (
	"strings"
	"testing"
)

// tinyOptions keeps harness tests fast.
func tinyOptions() Options {
	o := QuickOptions()
	o.N = 8000
	o.Queries = 40
	o.DPUs = 8
	o.IVFGrid = []int{8, 16}
	o.NProbeGrid = []int{2, 4}
	return o
}

func TestExperimentRegistry(t *testing.T) {
	all := All()
	if len(all) != 24 {
		t.Fatalf("registry holds %d experiments, want 24", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Find("fig10"); !ok {
		t.Fatal("Find(fig10) failed")
	}
	if _, ok := Find("nonsense"); ok {
		t.Fatal("Find(nonsense) succeeded")
	}
	if len(IDs()) != 24 {
		t.Fatal("IDs() count mismatch")
	}
}

func TestCheapExperiments(t *testing.T) {
	ctx := NewContext(tinyOptions())
	for _, id := range []string{"table1", "fig1", "fig4", "fig7"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		rep, err := e.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		if s := rep.String(); !strings.Contains(s, rep.ID) {
			t.Fatalf("%s: report render missing id", id)
		}
	}
}

func TestFig7CurveShape(t *testing.T) {
	ctx := NewContext(tinyOptions())
	rep, err := ctx.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) < 8 {
		t.Fatalf("only %d rows", len(rows))
	}
}

func TestRecallCheckExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive in -short mode")
	}
	o := tinyOptions()
	ctx := NewContext(o)
	rep, err := ctx.RecallCheck()
	if err != nil {
		t.Fatal(err)
	}
	// Every dataset row must report an exact match with the quantized
	// reference.
	for _, row := range rep.Tables[0].Rows {
		if row[4] != "true" {
			t.Errorf("dataset %s: UpANNS != quantized reference", row[0])
		}
	}
}

// TestServingExperiment checks the acceptance shape of the serving sweep:
// micro-batching (batch >= 8) must beat batch-1 dispatch on QPS without
// worsening p99, and the result cache must lift p50 under Zipfian load.
func TestServingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive in -short mode")
	}
	ctx := NewContext(tinyOptions())
	policies := ServingPolicies()
	points, err := ctx.ServingCurve(policies)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(policies) {
		t.Fatalf("%d points for %d policies", len(points), len(policies))
	}
	for _, pt := range points {
		if pt.Stats.Shed != 0 || pt.Stats.Expired != 0 || pt.Stats.BackendErrs != 0 {
			t.Fatalf("%s: lossy run (shed=%d expired=%d errs=%d); measurements invalid",
				pt.Policy.Name, pt.Stats.Shed, pt.Stats.Expired, pt.Stats.BackendErrs)
		}
		if pt.QPS <= 0 {
			t.Fatalf("%s: nonpositive QPS", pt.Policy.Name)
		}
	}

	batched := points[1]
	if batched.Policy.MaxBatch < 8 {
		t.Fatalf("second policy batches %d < 8", batched.Policy.MaxBatch)
	}
	if batched.Stats.MeanBatchSize <= 1.5 {
		t.Errorf("micro-batching never coalesced: mean batch %.2f", batched.Stats.MeanBatchSize)
	}
	// The acceptance shape (every batched policy beats batch-1 on QPS,
	// the batching frontier equal-or-lower on p99, cache lifting p50)
	// has one source of truth: ServingArtifact.Violations, the same
	// check the CI bench-smoke gate runs.
	if v := servingArtifact(points).Violations(); len(v) != 0 {
		t.Errorf("serving artifact violations: %v", v)
	}

	// Violations assumes the sweep's last two policies are cache-off
	// then cache-on; pin that structure here (the checks themselves live
	// in Violations).
	uncached, cached := points[len(points)-2], points[len(points)-1]
	if cached.Policy.CacheSize == 0 || uncached.Policy.CacheSize != 0 {
		t.Fatal("last two policies must be cache-off then cache-on")
	}

	// The tracing-overhead pair rides the same harness; its p99 budget
	// check lives in Violations with the rest of the acceptance shape.
	tracing, err := ctx.ServingTracingOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if tracing.P99OffSeconds <= 0 || tracing.P99OnSeconds <= 0 {
		t.Fatalf("tracing pair measured nonpositive p99: %+v", tracing)
	}
	if tracing.MeanOffSeconds <= 0 || tracing.MeanOnSeconds <= 0 {
		t.Fatalf("tracing pair measured nonpositive mean: %+v", tracing)
	}
	// The full health-plane pair rides the same harness as tracing.
	obsPair, err := ctx.ServingObsOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if obsPair.P99OffSeconds <= 0 || obsPair.P99OnSeconds <= 0 ||
		obsPair.MeanOffSeconds <= 0 || obsPair.MeanOnSeconds <= 0 {
		t.Fatalf("obs pair measured nonpositive latency: %+v", obsPair)
	}

	if !raceEnabled {
		// The 5% mean-overhead budget is a wall-clock ratio; under race
		// instrumentation the harness runs a single round, too noisy for
		// the budget, so only the structural fields above are checked
		// there (the uninstrumented bench-smoke job owns the budget).
		art := servingArtifact(points)
		art.Tracing = tracing
		art.Obs = obsPair
		if v := art.Violations(); len(v) != 0 {
			t.Errorf("serving artifact violations with overhead pairs: %v", v)
		}
	}

	rep := servingReport(points, tracing, obsPair)
	if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) != len(policies) {
		t.Fatal("serving report malformed")
	}
	if !strings.Contains(rep.String(), "serving") {
		t.Fatal("serving report render missing id")
	}
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive in -short mode")
	}
	o := tinyOptions()
	ctx := NewContext(o)
	rep, err := ctx.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("fig13 produced %d tables", len(rep.Tables))
	}
}

func TestFig20Regression(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive in -short mode")
	}
	o := tinyOptions()
	ctx := NewContext(o)
	rep, err := ctx.Fig20()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "r2") {
			found = true
		}
	}
	if !found {
		t.Error("fig20 notes missing regression fit")
	}
}
