package bench

import (
	"strings"
	"testing"
)

// tinyOptions keeps harness tests fast.
func tinyOptions() Options {
	o := QuickOptions()
	o.N = 8000
	o.Queries = 40
	o.DPUs = 8
	o.IVFGrid = []int{8, 16}
	o.NProbeGrid = []int{2, 4}
	return o
}

func TestExperimentRegistry(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("registry holds %d experiments, want 17", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Find("fig10"); !ok {
		t.Fatal("Find(fig10) failed")
	}
	if _, ok := Find("nonsense"); ok {
		t.Fatal("Find(nonsense) succeeded")
	}
	if len(IDs()) != 17 {
		t.Fatal("IDs() count mismatch")
	}
}

func TestCheapExperiments(t *testing.T) {
	ctx := NewContext(tinyOptions())
	for _, id := range []string{"table1", "fig1", "fig4", "fig7"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		rep, err := e.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		if s := rep.String(); !strings.Contains(s, rep.ID) {
			t.Fatalf("%s: report render missing id", id)
		}
	}
}

func TestFig7CurveShape(t *testing.T) {
	ctx := NewContext(tinyOptions())
	rep, err := ctx.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) < 8 {
		t.Fatalf("only %d rows", len(rows))
	}
}

func TestRecallCheckExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive in -short mode")
	}
	o := tinyOptions()
	ctx := NewContext(o)
	rep, err := ctx.RecallCheck()
	if err != nil {
		t.Fatal(err)
	}
	// Every dataset row must report an exact match with the quantized
	// reference.
	for _, row := range rep.Tables[0].Rows {
		if row[4] != "true" {
			t.Errorf("dataset %s: UpANNS != quantized reference", row[0])
		}
	}
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive in -short mode")
	}
	o := tinyOptions()
	ctx := NewContext(o)
	rep, err := ctx.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("fig13 produced %d tables", len(rep.Tables))
	}
}

func TestFig20Regression(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive in -short mode")
	}
	o := tinyOptions()
	ctx := NewContext(o)
	rep, err := ctx.Fig20()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "r2") {
			found = true
		}
	}
	if !found {
		t.Error("fig20 notes missing regression fit")
	}
}
