package bench

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ivfpq"
	"repro/internal/metrics"
	"repro/internal/mutable"
	"repro/internal/pim"
	"repro/internal/topk"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// The updates experiment measures the streaming-update subsystem
// (internal/mutable) under a churn cycle — 20% of the corpus inserted,
// 10% deleted — applied concurrently with closed-loop readers:
//
//   - recall stability: recall@k against exact ground truth over the
//     *live* set, before churn, at the end of each write-rate phase, and
//     after the final compaction;
//   - read tail latency vs write rate: per-phase read p50/p95/p99, with
//     the no-write phase as the baseline readers must stay within 3x of
//     while compactions run underneath;
//   - compaction pause profile: epoch count and per-compaction durations
//     (reads never pause — old epochs keep serving during a rebuild — so
//     "pause" shows up only as CPU contention in the read tail);
//   - rebuild fidelity: after the final compaction the folded index must
//     match a fresh full rebuild of the live set. "Rebuild" follows the
//     paper's Section 4.1.2 / core.Rebuild semantics: full data
//     relocation with the trained quantizers (quantizers are not
//     retrained online); a fully retrained rebuild is also reported.

// updatesClients is the closed-loop reader count per phase.
const updatesClients = 4

// updatesWriteBatch is the writer's application batch size.
const updatesWriteBatch = 32

// UpdatesPhase is one write-rate operating point of the churn run.
type UpdatesPhase struct {
	Name string
	// WriteBudget is the number of write ops this phase applies; 0 means
	// a read-only phase.
	WriteBudget int
	// Pause is the writer's sleep between application batches; longer
	// pauses mean a lower write rate.
	Pause time.Duration
	// MinReads is the per-client read floor: read-only phases do exactly
	// this many, write phases at least this many (and keep reading until
	// the writer finishes), so tail quantiles always have samples.
	MinReads int
}

// UpdatesPointArtifact is one phase's machine-readable measurement.
type UpdatesPointArtifact struct {
	Name         string  `json:"name"`
	Writes       int     `json:"writes"`
	WritesPerSec float64 `json:"writes_per_sec"`
	Reads        int     `json:"reads"`
	P50          float64 `json:"read_p50_seconds"`
	P95          float64 `json:"read_p95_seconds"`
	P99          float64 `json:"read_p99_seconds"`
	Recall       float64 `json:"recall_at_end"`
	Epochs       uint64  `json:"epochs_at_end"`
}

// UpdatesArtifact is the experiment's machine-readable result
// (BENCH_updates.json); Violations makes it self-checking.
type UpdatesArtifact struct {
	BaseN   int `json:"base_n"`
	K       int `json:"k"`
	Inserts int `json:"inserts"`
	Deletes int `json:"deletes"`

	Points []UpdatesPointArtifact `json:"points"`

	RecallBefore    float64 `json:"recall_before_churn"`
	RecallFinal     float64 `json:"recall_after_final_compaction"`
	RecallRebuild   float64 `json:"recall_fresh_rebuild"`
	RecallRetrained float64 `json:"recall_retrained_rebuild"`

	Epochs          uint64  `json:"epochs"`
	Compactions     uint64  `json:"compactions"`
	CompactMeanSecs float64 `json:"compaction_mean_seconds"`
	CompactMaxSecs  float64 `json:"compaction_max_seconds"`
	FoldedEntries   uint64  `json:"folded_entries"`
}

// Violations returns the acceptance-shape regressions this run exhibits
// (empty = healthy). The shapes mirror the experiment's contract: recall
// under churn holds a floor, the folded index matches a fresh rebuild,
// the read tail survives concurrent compaction, and compaction actually
// ran.
func (a *UpdatesArtifact) Violations() []string {
	var v []string
	if a.Compactions == 0 {
		v = append(v, "updates: no compaction ran during the churn cycle")
	}
	if diff := abs(a.RecallFinal - a.RecallRebuild); diff > 0.02 {
		v = append(v, fmt.Sprintf("updates: post-churn recall %.4f deviates %.4f (>0.02) from fresh rebuild %.4f",
			a.RecallFinal, diff, a.RecallRebuild))
	}
	// The churn phases are bracketed by no-write baselines (see
	// UpdatesPhases); the worse bracket is the fair denominator under
	// ambient machine load.
	baselineP99 := 0.0
	nBaselines := 0
	for _, p := range a.Points {
		if p.Writes == 0 {
			nBaselines++
			if p.P99 > baselineP99 {
				baselineP99 = p.P99
			}
		}
	}
	if nBaselines == 0 {
		v = append(v, "updates: no no-write baseline phase measured")
		return v
	}
	floor := a.RecallBefore - 0.05
	for _, p := range a.Points {
		if p.Writes == 0 {
			continue
		}
		if p.Recall < floor {
			v = append(v, fmt.Sprintf("updates[%s]: recall under churn %.4f below floor %.4f", p.Name, p.Recall, floor))
		}
		if baselineP99 > 0 && p.P99 > 3*baselineP99 {
			v = append(v, fmt.Sprintf("updates[%s]: read p99 %.6fs exceeds 3x no-write baseline %.6fs",
				p.Name, p.P99, baselineP99))
		}
	}
	if a.RecallFinal < floor {
		v = append(v, fmt.Sprintf("updates: final recall %.4f below floor %.4f", a.RecallFinal, floor))
	}
	return v
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// UpdatesPhases returns the default sweep: the churn cycle split across
// a paced and a full-speed write phase, *bracketed* by two no-write
// baselines. The read-tail acceptance compares churn p99 against the
// worse of the two baselines: ambient machine load (CI neighbors, other
// test packages running in parallel) slows the brackets and the churn
// phases alike and cancels out of the ratio, while a genuine
// compaction-induced stall inflates only the churn phases and still
// trips the bound.
func UpdatesPhases(totalWrites int) []UpdatesPhase {
	half := totalWrites / 2
	return []UpdatesPhase{
		{Name: "no writes (baseline)", MinReads: 120},
		{Name: "paced writes", WriteBudget: half, Pause: 2 * time.Millisecond, MinReads: 60},
		{Name: "full-speed writes", WriteBudget: totalWrites - half, MinReads: 60},
		{Name: "no writes (post churn)", MinReads: 120},
	}
}

// Updates runs the experiment and renders the report.
func (c *Context) Updates() (*Report, error) {
	art, err := c.UpdatesRun()
	if err != nil {
		return nil, err
	}
	return updatesReport(art), nil
}

// UpdatesRun executes the churn cycle and returns the raw artifact
// (tests assert on it directly; Updates renders it).
func (c *Context) UpdatesRun() (*UpdatesArtifact, error) {
	s := c.getSetup(dataset.SIFT1B, c.O.IVFGrid[0])
	nprobe := c.O.NProbeGrid[len(c.O.NProbeGrid)-1]
	k := c.O.K

	// The shared streaming-deployment policy (K slack, CAE off, one
	// DIMM) — the same config cmd/upanns-serve deploys, so the benchmark
	// measures the deployment the server runs. The compactor polls fast
	// so tiny-scale churn still triggers epochs mid-phase.
	mcfg := mutable.ServingConfig(nprobe, k, c.O.DPUs, c.O.Seed)
	mcfg.CheckInterval = 2 * time.Millisecond
	ecfg := mcfg.Engine

	u, err := mutable.New(s.ix, s.freqs, mcfg)
	if err != nil {
		return nil, err
	}
	defer u.Close()

	// Live ground truth: id -> vector, updated alongside the op stream.
	live := make(map[int64][]float32, s.ds.Vectors.Rows)
	for i := 0; i < s.ds.Vectors.Rows; i++ {
		live[int64(i)] = s.ds.Vectors.Row(i)
	}

	// The churn cycle: ~20% of the corpus inserted, ~10% deleted (the
	// mixed stream draws deletes as 1/3 of writes).
	n := s.ds.Vectors.Rows
	totalWrites := (3 * n) / 10
	insertPool := dataset.Generate(dataset.SIFT1B, totalWrites, c.O.Seed+101).Vectors
	baseIDs := make([]int64, n)
	for i := range baseIDs {
		baseIDs[i] = int64(i)
	}
	stream := workload.NewMixedStream(
		workload.MixedConfig{WriteFraction: 1, DeleteShare: 1.0 / 3, QuerySkew: 1},
		s.queries, insertPool, baseIDs, int64(n), c.O.Seed+202)

	art := &UpdatesArtifact{BaseN: n, K: k}
	art.RecallBefore, err = c.measureRecall(u, s.queries, live, k)
	if err != nil {
		return nil, err
	}

	for _, ph := range UpdatesPhases(totalWrites) {
		pt, err := c.runUpdatesPhase(u, s, stream, live, ph, k)
		if err != nil {
			return nil, fmt.Errorf("updates phase %q: %w", ph.Name, err)
		}
		art.Points = append(art.Points, pt)
	}
	art.Inserts = int(u.Stats().Inserts)
	art.Deletes = int(u.Stats().Deletes)

	// Final compaction folds whatever overlay remains, then the folded
	// epoch is compared against fresh rebuilds of the live set.
	if _, err := u.Compact(true); err != nil {
		return nil, err
	}
	if art.RecallFinal, err = c.measureRecall(u, s.queries, live, k); err != nil {
		return nil, err
	}

	st := u.Stats()
	art.Epochs = st.Epoch
	art.Compactions = st.Compactions
	art.CompactMaxSecs = st.MaxCompactSecs
	if st.Compactions > 0 {
		art.CompactMeanSecs = st.SumCompactSecs / float64(st.Compactions)
	}
	art.FoldedEntries = st.FoldedEntries

	liveIDs, liveMat := liveMatrix(live, s.ds.Vectors.Dim)
	art.RecallRebuild, err = c.rebuildRecall(s.ix.CloneStructure(), liveIDs, liveMat, s, ecfg, k, false)
	if err != nil {
		return nil, err
	}
	art.RecallRetrained, err = c.rebuildRecall(nil, liveIDs, liveMat, s, ecfg, k, true)
	if err != nil {
		return nil, err
	}
	// Exact ground truth for the rebuild recalls is shared via live.
	return art, nil
}

// runUpdatesPhase drives one phase: closed-loop readers (recording read
// latency) while the writer applies its budget from the mixed stream.
func (c *Context) runUpdatesPhase(u *mutable.UpdatableIndex, s *setup, stream *workload.MixedStream, live map[int64][]float32, ph UpdatesPhase, k int) (UpdatesPointArtifact, error) {
	lat := metrics.NewLatencyHistogram()
	var reads atomic.Int64
	var writerDone atomic.Bool
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < updatesClients; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			qs := workload.NewQueryStream(s.queries, 1.0, c.O.Seed+uint64(r)*6131)
			buf := vecmath.NewMatrix(1, s.queries.Dim)
			for i := 0; ; i++ {
				if i >= ph.MinReads && (ph.WriteBudget == 0 || writerDone.Load()) {
					return
				}
				copy(buf.Row(0), qs.Next())
				t0 := time.Now()
				if _, err := u.Search(buf, mutable.SearchOpts{K: k}); err != nil {
					fail(err)
					return
				}
				lat.Observe(time.Since(t0).Seconds())
				reads.Add(1)
			}
		}(r)
	}

	writes := 0
	if ph.WriteBudget > 0 {
		ups := make([]int64, 0, updatesWriteBatch)
		upVecs := vecmath.NewMatrix(updatesWriteBatch, s.ds.Vectors.Dim)
		dels := make([]int64, 0, updatesWriteBatch)
		for writes < ph.WriteBudget {
			batch := updatesWriteBatch
			if rem := ph.WriteBudget - writes; rem < batch {
				batch = rem
			}
			ups, dels = ups[:0], dels[:0]
			for i := 0; i < batch; i++ {
				op := stream.Next()
				switch op.Kind {
				case workload.OpUpsert:
					upVecs.SetRow(len(ups), op.Vec)
					ups = append(ups, op.ID)
					live[op.ID] = op.Vec
				case workload.OpDelete:
					dels = append(dels, op.ID)
					delete(live, op.ID)
				}
			}
			// Ids are disjoint across the two runs (upserts mint fresh
			// ids, a batch never deletes an id it just minted... it can,
			// but the delete still logically follows the upsert, and
			// applying upserts first preserves that order).
			if len(ups) > 0 {
				m := vecmath.WrapMatrix(upVecs.Data[:len(ups)*upVecs.Dim], len(ups), upVecs.Dim)
				if err := u.Upsert(ups, m); err != nil {
					fail(err)
					break
				}
			}
			if len(dels) > 0 {
				if err := u.Remove(dels); err != nil {
					fail(err)
					break
				}
			}
			writes += batch
			if ph.Pause > 0 {
				time.Sleep(ph.Pause)
			}
		}
	}
	writerDone.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if firstErr != nil {
		return UpdatesPointArtifact{}, firstErr
	}

	recall, err := c.measureRecall(u, s.queries, live, k)
	if err != nil {
		return UpdatesPointArtifact{}, err
	}
	snap := lat.Snapshot()
	pt := UpdatesPointArtifact{
		Name:   ph.Name,
		Writes: writes,
		Reads:  int(reads.Load()),
		P50:    snap.P50,
		P95:    snap.P95,
		P99:    snap.P99,
		Recall: recall,
		Epochs: u.Stats().Epoch,
	}
	if writes > 0 && elapsed > 0 {
		pt.WritesPerSec = float64(writes) / elapsed
	}
	return pt, nil
}

// measureRecall computes mean recall@k of the updatable index against
// exact L2 ground truth over the live set.
func (c *Context) measureRecall(u *mutable.UpdatableIndex, queries *vecmath.Matrix, live map[int64][]float32, k int) (float64, error) {
	res, err := u.Search(queries, mutable.SearchOpts{K: k})
	if err != nil {
		return 0, err
	}
	return meanRecall(res, queries, live, k), nil
}

// meanRecall scores approximate results against brute-force exact search
// over the live map.
func meanRecall(res [][]topk.Candidate, queries *vecmath.Matrix, live map[int64][]float32, k int) float64 {
	total := 0.0
	for qi := 0; qi < queries.Rows; qi++ {
		exact := exactTopK(live, queries.Row(qi), k)
		hit := 0
		for _, c := range res[qi] {
			if exact[c.ID] {
				hit++
			}
		}
		total += float64(hit) / float64(k)
	}
	return total / float64(queries.Rows)
}

// exactTopK brute-forces the k nearest live ids for one query.
func exactTopK(live map[int64][]float32, q []float32, k int) map[int64]bool {
	h := topk.NewHeap(k)
	for id, vec := range live {
		h.Push(id, vecmath.L2Squared(q, vec))
	}
	out := make(map[int64]bool, k)
	for _, c := range h.Sorted() {
		out[c.ID] = true
	}
	return out
}

// liveMatrix flattens the live map into an id slice and matrix, sorted by
// id for determinism.
func liveMatrix(live map[int64][]float32, dim int) ([]int64, *vecmath.Matrix) {
	ids := make([]int64, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	m := vecmath.NewMatrix(len(ids), dim)
	for i, id := range ids {
		m.SetRow(i, live[id])
	}
	return ids, m
}

// rebuildRecall builds a fresh deployment of the live set and measures
// its recall. With into != nil the trained quantizers are reused (the
// paper's full-relocation rebuild); with retrain the index is trained
// from scratch on the live set.
func (c *Context) rebuildRecall(into *ivfpq.Index, liveIDs []int64, liveMat *vecmath.Matrix, s *setup, ecfg core.Config, k int, retrain bool) (float64, error) {
	var ix *ivfpq.Index
	if retrain {
		ix = ivfpq.Train(liveMat, ivfpq.Params{
			NList: s.ix.NList(), M: s.spec.M, KSub: c.O.KSub, Seed: c.O.Seed + 7, TrainSub: c.O.TrainSub,
		})
	} else {
		ix = into
	}
	ix.Add(liveMat, 0)

	spec := pim.DefaultSpec()
	spec.NumDIMMs = 1
	spec.DPUsPerDIMM = c.O.DPUs
	eng, err := core.Build(ix, pim.NewSystem(spec), nil, ecfg)
	if err != nil {
		return 0, err
	}
	br, err := eng.SearchBatch(s.queries)
	if err != nil {
		return 0, err
	}
	// Row ids map back to original ids through liveIDs; score against the
	// same exact ground truth as the updatable index.
	live := make(map[int64][]float32, len(liveIDs))
	for i, id := range liveIDs {
		live[id] = liveMat.Row(i)
	}
	res := make([][]topk.Candidate, len(br.Results))
	for qi, cands := range br.Results {
		mapped := make([]topk.Candidate, 0, min(k, len(cands)))
		for _, cand := range cands {
			if len(mapped) == k {
				break
			}
			mapped = append(mapped, topk.Candidate{ID: liveIDs[cand.ID], Dist: cand.Dist})
		}
		res[qi] = mapped
	}
	return meanRecall(res, s.queries, live, k), nil
}

// updatesReport renders the artifact as the experiment report.
func updatesReport(a *UpdatesArtifact) *Report {
	rep := &Report{
		ID:       "updates",
		Title:    "Streaming updates: recall stability and read tail under churn",
		Artifact: a,
	}
	t := metrics.NewTable(
		fmt.Sprintf("Churn cycle on %s (N=%d, +%d upserts, -%d deletes, %d readers)",
			dataset.SIFT1B.Name, a.BaseN, a.Inserts, a.Deletes, updatesClients),
		"phase", "writes", "writes/s", "reads", "p50", "p95", "p99", "recall", "epochs")
	for _, p := range a.Points {
		t.AddRow(p.Name,
			fmt.Sprintf("%d", p.Writes),
			metrics.F(p.WritesPerSec),
			fmt.Sprintf("%d", p.Reads),
			metrics.Seconds(p.P50),
			metrics.Seconds(p.P95),
			metrics.Seconds(p.P99),
			fmt.Sprintf("%.4f", p.Recall),
			fmt.Sprintf("%d", p.Epochs))
	}
	rep.Tables = append(rep.Tables, t)

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("recall: %.4f before churn -> %.4f after final compaction; fresh rebuild %.4f, retrained rebuild %.4f",
			a.RecallBefore, a.RecallFinal, a.RecallRebuild, a.RecallRetrained),
		fmt.Sprintf("compaction profile: %d epochs, %d compactions, mean %s, max %s, %d entries folded",
			a.Epochs, a.Compactions,
			metrics.Seconds(a.CompactMeanSecs), metrics.Seconds(a.CompactMaxSecs), a.FoldedEntries),
		"expected shape: churn recall within 0.05 of pre-churn, post-compaction recall within 0.02 of a fresh rebuild, read p99 under 3x the no-write baseline")
	for _, v := range a.Violations() {
		rep.Notes = append(rep.Notes, "VIOLATION: "+v)
	}
	return rep
}
