package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// ServingPolicy is one serving-layer operating point of the QPS-vs-p99
// sweep.
type ServingPolicy struct {
	Name      string
	MaxBatch  int
	Linger    time.Duration
	CacheSize int
}

// ServingPolicies returns the sweep: no batching, two micro-batching
// settings, and micro-batching plus the result cache.
func ServingPolicies() []ServingPolicy {
	return []ServingPolicy{
		{Name: "batch=1 (no batching)", MaxBatch: 1},
		{Name: "batch=8 linger=200us", MaxBatch: 8, Linger: 200 * time.Microsecond},
		{Name: "batch=32 linger=500us", MaxBatch: 32, Linger: 500 * time.Microsecond},
		{Name: "batch=32 + cache", MaxBatch: 32, Linger: 500 * time.Microsecond, CacheSize: 256},
	}
}

// ServingPoint is one measured serving operating point.
type ServingPoint struct {
	Policy ServingPolicy
	QPS    float64
	Stats  serve.Stats
}

// Serving is the online-serving experiment: closed-loop clients issue
// Zipf-skewed single-query requests against the serving layer
// (internal/serve) fronting the engine, and each policy's sustained QPS
// and latency quantiles are measured end to end. It is the serving-tier
// restatement of Fig. 16: per-query cost falls with batched dispatch, so
// micro-batching lifts QPS while *reducing* tail latency under concurrent
// load (queue waits shrink faster than linger adds delay), and the LRU
// cache converts the Fig. 4a popularity skew into sub-engine-latency p50.
func (c *Context) Serving() (*Report, error) {
	points, err := c.ServingCurve(ServingPolicies())
	if err != nil {
		return nil, err
	}
	tracing, err := c.ServingTracingOverhead()
	if err != nil {
		return nil, err
	}
	obsPair, err := c.ServingObsOverhead()
	if err != nil {
		return nil, err
	}
	return servingReport(points, tracing, obsPair), nil
}

// ServingPointArtifact is one policy's machine-readable measurement.
type ServingPointArtifact struct {
	Name          string  `json:"name"`
	MaxBatch      int     `json:"max_batch"`
	CacheSize     int     `json:"cache_size"`
	QPS           float64 `json:"qps"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	HitRate       float64 `json:"cache_hit_rate"`
	P50           float64 `json:"p50_seconds"`
	P95           float64 `json:"p95_seconds"`
	P99           float64 `json:"p99_seconds"`
	Shed          uint64  `json:"shed"`
	Expired       uint64  `json:"expired"`
	BackendErrs   uint64  `json:"backend_errors"`
}

// ServingTracingArtifact is the tracing-overhead measurement: the same
// micro-batching policy driven twice under identical closed-loop load,
// once with tracing off (no trace in the request context, so every span
// call no-ops on a nil receiver) and once with every request traced into
// the retention rings.
type ServingTracingArtifact struct {
	P99OffSeconds  float64 `json:"p99_off_seconds"`
	P99OnSeconds   float64 `json:"p99_on_seconds"`
	MeanOffSeconds float64 `json:"mean_off_seconds"`
	MeanOnSeconds  float64 `json:"mean_on_seconds"`
	// OverheadPct is the relative mean-latency cost of tracing every
	// request, (on/off - 1) * 100. The budget is checked against the
	// mean rather than p99: p99 at smoke scale rides on a handful of
	// samples and is dominated by scheduler jitter, while the mean
	// averages hundreds of requests and isolates the tracing cost
	// itself. p99 is still reported for visibility.
	OverheadPct float64 `json:"mean_overhead_pct"`
}

// ServingObsArtifact is the health-plane overhead measurement: the
// batch=8 policy driven with the full observability plane off (no
// tracer, no SLO tracker, no cost tracker — every obs call no-ops on a
// nil receiver) and on (tracing, per-request SLO classification, and
// per-dispatch cost accounting all live), under identical closed-loop
// load. It is the evidence that the always-on health plane is free
// enough to deploy by default.
type ServingObsArtifact struct {
	P99OffSeconds  float64 `json:"p99_off_seconds"`
	P99OnSeconds   float64 `json:"p99_on_seconds"`
	MeanOffSeconds float64 `json:"mean_off_seconds"`
	MeanOnSeconds  float64 `json:"mean_on_seconds"`
	// OverheadPct is the relative mean-latency cost of the full plane,
	// (on/off - 1) * 100. Violations budgets both the mean and the p99.
	OverheadPct float64 `json:"mean_overhead_pct"`
}

// ServingArtifact is the serving sweep's machine-readable result
// (BENCH_serving.json); Violations makes it self-checking.
type ServingArtifact struct {
	Points  []ServingPointArtifact  `json:"points"`
	Tracing *ServingTracingArtifact `json:"tracing,omitempty"`
	Obs     *ServingObsArtifact     `json:"obs,omitempty"`
}

// Violations returns acceptance-shape regressions: the sweep must be
// lossless, every micro-batching policy must beat batch-1 dispatch on
// QPS, the batching frontier (best batched p99) must be equal-or-lower
// than batch-1's p99, and the cached policy must hit its cache and lift
// p50 over the uncached one. The frontier form keeps the tail check
// meaningful at smoke scale, where a single policy's p99 rides on a
// handful of samples.
func (a *ServingArtifact) Violations() []string {
	var v []string
	if len(a.Points) < 4 {
		return append(v, "serving: sweep incomplete")
	}
	for _, p := range a.Points {
		if p.Shed != 0 || p.Expired != 0 || p.BackendErrs != 0 {
			v = append(v, fmt.Sprintf("serving[%s]: lossy run (shed=%d expired=%d errs=%d)",
				p.Name, p.Shed, p.Expired, p.BackendErrs))
		}
	}
	base := a.Points[0]
	bestP99 := -1.0
	for _, p := range a.Points[1:] {
		if p.QPS <= base.QPS {
			v = append(v, fmt.Sprintf("serving: batch=%d QPS %.0f not above batch=1 QPS %.0f",
				p.MaxBatch, p.QPS, base.QPS))
		}
		if bestP99 < 0 || p.P99 < bestP99 {
			bestP99 = p.P99
		}
	}
	if bestP99 > base.P99 {
		v = append(v, fmt.Sprintf("serving: best batched p99 %.6fs worse than batch=1 p99 %.6fs",
			bestP99, base.P99))
	}
	uncached, cached := a.Points[len(a.Points)-2], a.Points[len(a.Points)-1]
	if cached.HitRate <= 0.1 {
		v = append(v, fmt.Sprintf("serving: cache hit rate %.2f too low for Zipf load", cached.HitRate))
	}
	if cached.P50 >= uncached.P50 {
		v = append(v, fmt.Sprintf("serving: cache did not reduce p50 (%.6fs vs %.6fs)", cached.P50, uncached.P50))
	}
	if a.Tracing != nil {
		// Tracing must cost under 5% of mean latency — that is the budget
		// that justifies tracing every request by default. The 500us
		// absolute term is the smoke-scale noise floor: per-request span
		// work costs single-digit microseconds, so a real tracing
		// regression shows up as milliseconds, while scheduler jitter on
		// a loaded host routinely moves a few-millisecond mean by a few
		// hundred microseconds. The relative bound dominates at
		// production-scale latencies.
		if limit := a.Tracing.MeanOffSeconds*1.05 + 500e-6; a.Tracing.MeanOnSeconds > limit {
			v = append(v, fmt.Sprintf("serving: tracing mean overhead %.1f%% (%.6fs -> %.6fs) exceeds the 5%% budget",
				a.Tracing.OverheadPct, a.Tracing.MeanOffSeconds, a.Tracing.MeanOnSeconds))
		}
	}
	if a.Obs != nil {
		// The full health plane gets the same 5% budget as tracing alone:
		// SLO classification is two atomic-free counter bumps under a
		// short lock, and cost accounting is one struct share per batch
		// plus an atomic floor check per request, so the plane should be
		// indistinguishable from the tracer it rides with. The absolute
		// terms are the smoke-scale noise floors (see the tracing budget
		// above); p99 gets a wider one because at smoke scale it rides on
		// a handful of samples.
		if limit := a.Obs.MeanOffSeconds*1.05 + 500e-6; a.Obs.MeanOnSeconds > limit {
			v = append(v, fmt.Sprintf("serving: obs mean overhead %.1f%% (%.6fs -> %.6fs) exceeds the 5%% budget",
				a.Obs.OverheadPct, a.Obs.MeanOffSeconds, a.Obs.MeanOnSeconds))
		}
		if limit := a.Obs.P99OffSeconds*1.05 + 2e-3; a.Obs.P99OnSeconds > limit {
			v = append(v, fmt.Sprintf("serving: obs p99 %.6fs -> %.6fs exceeds the 5%% budget",
				a.Obs.P99OffSeconds, a.Obs.P99OnSeconds))
		}
	}
	return v
}

// servingArtifact flattens measured points into the artifact form.
func servingArtifact(points []ServingPoint) *ServingArtifact {
	a := &ServingArtifact{}
	for _, pt := range points {
		a.Points = append(a.Points, ServingPointArtifact{
			Name:          pt.Policy.Name,
			MaxBatch:      pt.Policy.MaxBatch,
			CacheSize:     pt.Policy.CacheSize,
			QPS:           pt.QPS,
			MeanBatchSize: pt.Stats.MeanBatchSize,
			HitRate:       pt.Stats.HitRate(),
			P50:           pt.Stats.Latency.P50,
			P95:           pt.Stats.Latency.P95,
			P99:           pt.Stats.Latency.P99,
			Shed:          pt.Stats.Shed,
			Expired:       pt.Stats.Expired,
			BackendErrs:   pt.Stats.BackendErrs,
		})
	}
	return a
}

// servingReport renders measured serving points (and, when measured,
// the tracing- and obs-overhead pairs) as the experiment report.
func servingReport(points []ServingPoint, tracing *ServingTracingArtifact, obsPair *ServingObsArtifact) *Report {
	art := servingArtifact(points)
	art.Tracing = tracing
	art.Obs = obsPair
	rep := &Report{
		ID:       "serving",
		Title:    "Online serving: micro-batching and caching vs QPS and tail latency",
		Artifact: art,
	}
	t := metrics.NewTable(
		fmt.Sprintf("Serving sweep (%s, %d closed-loop clients, Zipf query popularity)",
			dataset.SIFT1B.Name, servingClients),
		"policy", "QPS", "mean batch", "coalesced", "hit rate", "p50", "p95", "p99", "shed")
	for _, pt := range points {
		t.AddRow(pt.Policy.Name,
			metrics.F(pt.QPS),
			metrics.F(pt.Stats.MeanBatchSize),
			fmt.Sprintf("%d", pt.Stats.Coalesced),
			metrics.Pct(pt.Stats.HitRate()),
			metrics.Seconds(pt.Stats.Latency.P50),
			metrics.Seconds(pt.Stats.Latency.P95),
			metrics.Seconds(pt.Stats.Latency.P99),
			fmt.Sprintf("%d", pt.Stats.Shed))
	}
	rep.Tables = append(rep.Tables, t)

	base, batched, cached := points[0], points[1], points[len(points)-1]
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("micro-batching (batch=8) vs none: %.2fx QPS, p99 %s -> %s",
			batched.QPS/base.QPS,
			metrics.Seconds(base.Stats.Latency.P99), metrics.Seconds(batched.Stats.Latency.P99)),
		fmt.Sprintf("result cache under Zipf load: hit rate %s, p50 %s -> %s",
			metrics.Pct(cached.Stats.HitRate()),
			metrics.Seconds(points[len(points)-2].Stats.Latency.P50),
			metrics.Seconds(cached.Stats.Latency.P50)),
		"expected shape: batch >= 8 strictly above batch=1 QPS at equal-or-lower p99; cache cuts p50 further")
	if tracing != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"tracing every request: mean %s (off) -> %s (on), %.1f%% overhead (budget 5%%); p99 %s -> %s",
			metrics.Seconds(tracing.MeanOffSeconds), metrics.Seconds(tracing.MeanOnSeconds),
			tracing.OverheadPct,
			metrics.Seconds(tracing.P99OffSeconds), metrics.Seconds(tracing.P99OnSeconds)))
	}
	if obsPair != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"full health plane (tracer + SLO + cost): mean %s (off) -> %s (on), %.1f%% overhead (budget 5%%); p99 %s -> %s",
			metrics.Seconds(obsPair.MeanOffSeconds), metrics.Seconds(obsPair.MeanOnSeconds),
			obsPair.OverheadPct,
			metrics.Seconds(obsPair.P99OffSeconds), metrics.Seconds(obsPair.P99OnSeconds)))
	}
	return rep
}

// servingClients is the closed-loop client count; enough concurrency to
// fill micro-batches without oversubscribing small CI machines.
const servingClients = 16

// ServingCurve measures every policy on the harness' default engine and
// returns the raw points (the Serving experiment renders them; tests
// assert on them directly).
func (c *Context) ServingCurve(policies []ServingPolicy) ([]ServingPoint, error) {
	s := c.getSetup(dataset.SIFT1B, c.O.IVFGrid[0])
	nprobe := c.O.NProbeGrid[0]
	cfg := c.upannsConfig(nprobe)
	e, err := c.getEngine(s, cfg, buildKey(cfg), c.O.DPUs)
	if err != nil {
		return nil, err
	}

	total := 10 * c.O.Queries
	if total < 400 {
		total = 400
	}
	perClient := (total + servingClients - 1) / servingClients

	// Two interleaved sweep rounds, keeping each policy's higher-QPS
	// point: the acceptance shape compares policies against each other,
	// and a noise burst on a shared host that hits a single policy's
	// only run would invert a comparison the code did not. Round-robin
	// order (full sweep, then full sweep again) spreads any load ramp
	// across all policies instead of concentrating it on the last one.
	// One round under the race detector, where runs cost multiples and
	// only structural shapes are asserted.
	rounds := 2
	if raceEnabled {
		rounds = 1
	}
	points := make([]ServingPoint, len(policies))
	for round := 0; round < rounds; round++ {
		for i, p := range policies {
			pt, err := c.runServingPolicy(e, s.queries, p, perClient, servingObs{})
			if err != nil {
				return nil, fmt.Errorf("serving policy %q: %w", p.Name, err)
			}
			if round == 0 || pt.QPS > points[i].QPS {
				points[i] = pt
			}
		}
	}
	return points, nil
}

// ServingTracingOverhead measures the cost of tracing every request: the
// batch=8 policy driven twice under identical closed-loop load, spans
// off then spans on (a full tracer — head sampling 1, retention rings
// live — so every request pays span allocation, stage recording, and the
// ring push). The artifact's Violations pins the mean overhead under 5%.
func (c *Context) ServingTracingOverhead() (*ServingTracingArtifact, error) {
	p := ServingPolicy{Name: "batch=8 (tracing pair)", MaxBatch: 8, Linger: 200 * time.Microsecond}
	meanOff, meanOn, p99Off, p99On, err := c.servingOverheadPair(p, "tracing", func() servingObs {
		return servingObs{tracer: obs.NewTracer(obs.TracerConfig{})}
	})
	if err != nil {
		return nil, err
	}
	return &ServingTracingArtifact{
		MeanOffSeconds: meanOff, MeanOnSeconds: meanOn,
		P99OffSeconds: p99Off, P99OnSeconds: p99On,
		OverheadPct: (meanOn/meanOff - 1) * 100,
	}, nil
}

// ServingObsOverhead measures the cost of the whole health plane: the
// batch=8 policy driven with everything off, then with a live tracer,
// an SLO tracker classifying every request, and a cost tracker fed by
// every dispatch — the full always-on configuration of a production
// shard. The artifact's Violations pins mean and p99 overhead under 5%.
func (c *Context) ServingObsOverhead() (*ServingObsArtifact, error) {
	p := ServingPolicy{Name: "batch=8 (obs pair)", MaxBatch: 8, Linger: 200 * time.Microsecond}
	meanOff, meanOn, p99Off, p99On, err := c.servingOverheadPair(p, "obs", func() servingObs {
		return servingObs{
			tracer: obs.NewTracer(obs.TracerConfig{}),
			slo:    obs.NewSLOTracker(obs.SLOConfig{Name: "bench"}),
			costs:  obs.NewCostTracker(0),
		}
	})
	if err != nil {
		return nil, err
	}
	return &ServingObsArtifact{
		MeanOffSeconds: meanOff, MeanOnSeconds: meanOn,
		P99OffSeconds: p99Off, P99OnSeconds: p99On,
		OverheadPct: (meanOn/meanOff - 1) * 100,
	}, nil
}

// servingOverheadPair drives policy p under identical closed-loop load
// with instrumentation off and on (a fresh `on` configuration per rep,
// so retention rings never carry over) and returns the best means and
// p99s of each side. Off/on passes interleave and each side keeps its
// best (lowest) numbers: on a shared host a noisy phase hitting only
// one side would swamp the 5% budget these pairs are checked against,
// and the within-round order alternates (off/on, then on/off) so a
// monotone load ramp penalizes both sides equally instead of whichever
// runs second. Best-of keeps the ratio a property of the code rather
// than of the machine's moment. Under the race detector one round
// suffices: the run only feeds structural checks there, and every
// extra round costs seconds of instrumented serving.
func (c *Context) servingOverheadPair(p ServingPolicy, label string, on func() servingObs) (meanOff, meanOn, p99Off, p99On float64, err error) {
	s := c.getSetup(dataset.SIFT1B, c.O.IVFGrid[0])
	cfg := c.upannsConfig(c.O.NProbeGrid[0])
	e, err := c.getEngine(s, cfg, buildKey(cfg), c.O.DPUs)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	total := 10 * c.O.Queries
	if total < 400 {
		total = 400
	}
	perClient := (total + servingClients - 1) / servingClients

	reps := 5
	if raceEnabled {
		reps = 1
	}
	meanOff, meanOn, p99Off, p99On = -1, -1, -1, -1
	run := func(o servingObs, mean, p99 *float64) error {
		pt, err := c.runServingPolicy(e, s.queries, p, perClient, o)
		if err != nil {
			return fmt.Errorf("serving %s pair run: %w", label, err)
		}
		if *mean < 0 || pt.Stats.Latency.Mean < *mean {
			*mean = pt.Stats.Latency.Mean
		}
		if *p99 < 0 || pt.Stats.Latency.P99 < *p99 {
			*p99 = pt.Stats.Latency.P99
		}
		return nil
	}
	runOff := func() error { return run(servingObs{}, &meanOff, &p99Off) }
	runOn := func() error { return run(on(), &meanOn, &p99On) }
	for i := 0; i < reps; i++ {
		first, second := runOff, runOn
		if i%2 == 1 {
			first, second = runOn, runOff
		}
		if err := first(); err != nil {
			return 0, 0, 0, 0, err
		}
		if err := second(); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	return meanOff, meanOn, p99Off, p99On, nil
}

// servingObs is one side of an instrumentation overhead pair: which
// parts of the observability plane a serving run wires in. The zero
// value is the fully-off baseline — every obs call no-ops on a nil
// receiver.
type servingObs struct {
	tracer *obs.Tracer
	slo    *obs.SLOTracker
	costs  *obs.CostTracker
}

// runServingPolicy drives one policy with closed-loop Zipfian clients
// and returns the measured point. o selects the instrumentation: a
// non-nil tracer traces every request (span instrumentation active
// through the whole serve path plus ring retention), a non-nil SLO
// tracker classifies every completion the way the HTTP handler does,
// and a non-nil cost tracker makes every dispatch account its cost
// vector.
func (c *Context) runServingPolicy(e *core.Engine, pool *vecmath.Matrix, p ServingPolicy, perClient int, o servingObs) (ServingPoint, error) {
	srv, err := serve.NewServer(serve.Config{
		K:              c.O.K,
		MaxBatch:       p.MaxBatch,
		MaxLinger:      p.Linger,
		QueueDepth:     4096,
		DefaultTimeout: 60 * time.Second,
		CacheSize:      p.CacheSize,
		Costs:          o.costs,
	}, serve.NewEngineBackend(e))
	if err != nil {
		return ServingPoint{}, err
	}

	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	start := time.Now()
	for w := 0; w < servingClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Zipf exponent ~1 matches the access-skew regime of Fig. 4a;
			// per-client seeds decorrelate the streams.
			stream := workload.NewQueryStream(pool, 1.0, c.O.Seed+uint64(w)*7919)
			for i := 0; i < perClient; i++ {
				tr := o.tracer.Start("serve.request")
				reqStart := time.Now()
				_, err := srv.Search(obs.WithTrace(context.Background(), tr), stream.Next())
				o.tracer.Finish(tr, err)
				o.slo.Record(err != nil, false, time.Since(reqStart))
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	srv.Close()
	if firstErr != nil {
		return ServingPoint{}, firstErr
	}
	st := srv.Stats()
	return ServingPoint{
		Policy: p,
		QPS:    float64(st.Completed+st.CacheHits) / elapsed,
		Stats:  st,
	}, nil
}
