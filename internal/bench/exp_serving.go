package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// ServingPolicy is one serving-layer operating point of the QPS-vs-p99
// sweep.
type ServingPolicy struct {
	Name      string
	MaxBatch  int
	Linger    time.Duration
	CacheSize int
}

// ServingPolicies returns the sweep: no batching, two micro-batching
// settings, and micro-batching plus the result cache.
func ServingPolicies() []ServingPolicy {
	return []ServingPolicy{
		{Name: "batch=1 (no batching)", MaxBatch: 1},
		{Name: "batch=8 linger=200us", MaxBatch: 8, Linger: 200 * time.Microsecond},
		{Name: "batch=32 linger=500us", MaxBatch: 32, Linger: 500 * time.Microsecond},
		{Name: "batch=32 + cache", MaxBatch: 32, Linger: 500 * time.Microsecond, CacheSize: 256},
	}
}

// ServingPoint is one measured serving operating point.
type ServingPoint struct {
	Policy ServingPolicy
	QPS    float64
	Stats  serve.Stats
}

// Serving is the online-serving experiment: closed-loop clients issue
// Zipf-skewed single-query requests against the serving layer
// (internal/serve) fronting the engine, and each policy's sustained QPS
// and latency quantiles are measured end to end. It is the serving-tier
// restatement of Fig. 16: per-query cost falls with batched dispatch, so
// micro-batching lifts QPS while *reducing* tail latency under concurrent
// load (queue waits shrink faster than linger adds delay), and the LRU
// cache converts the Fig. 4a popularity skew into sub-engine-latency p50.
func (c *Context) Serving() (*Report, error) {
	points, err := c.ServingCurve(ServingPolicies())
	if err != nil {
		return nil, err
	}
	tracing, err := c.ServingTracingOverhead()
	if err != nil {
		return nil, err
	}
	return servingReport(points, tracing), nil
}

// ServingPointArtifact is one policy's machine-readable measurement.
type ServingPointArtifact struct {
	Name          string  `json:"name"`
	MaxBatch      int     `json:"max_batch"`
	CacheSize     int     `json:"cache_size"`
	QPS           float64 `json:"qps"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	HitRate       float64 `json:"cache_hit_rate"`
	P50           float64 `json:"p50_seconds"`
	P95           float64 `json:"p95_seconds"`
	P99           float64 `json:"p99_seconds"`
	Shed          uint64  `json:"shed"`
	Expired       uint64  `json:"expired"`
	BackendErrs   uint64  `json:"backend_errors"`
}

// ServingTracingArtifact is the tracing-overhead measurement: the same
// micro-batching policy driven twice under identical closed-loop load,
// once with tracing off (no trace in the request context, so every span
// call no-ops on a nil receiver) and once with every request traced into
// the retention rings.
type ServingTracingArtifact struct {
	P99OffSeconds  float64 `json:"p99_off_seconds"`
	P99OnSeconds   float64 `json:"p99_on_seconds"`
	MeanOffSeconds float64 `json:"mean_off_seconds"`
	MeanOnSeconds  float64 `json:"mean_on_seconds"`
	// OverheadPct is the relative mean-latency cost of tracing every
	// request, (on/off - 1) * 100. The budget is checked against the
	// mean rather than p99: p99 at smoke scale rides on a handful of
	// samples and is dominated by scheduler jitter, while the mean
	// averages hundreds of requests and isolates the tracing cost
	// itself. p99 is still reported for visibility.
	OverheadPct float64 `json:"mean_overhead_pct"`
}

// ServingArtifact is the serving sweep's machine-readable result
// (BENCH_serving.json); Violations makes it self-checking.
type ServingArtifact struct {
	Points  []ServingPointArtifact  `json:"points"`
	Tracing *ServingTracingArtifact `json:"tracing,omitempty"`
}

// Violations returns acceptance-shape regressions: the sweep must be
// lossless, every micro-batching policy must beat batch-1 dispatch on
// QPS, the batching frontier (best batched p99) must be equal-or-lower
// than batch-1's p99, and the cached policy must hit its cache and lift
// p50 over the uncached one. The frontier form keeps the tail check
// meaningful at smoke scale, where a single policy's p99 rides on a
// handful of samples.
func (a *ServingArtifact) Violations() []string {
	var v []string
	if len(a.Points) < 4 {
		return append(v, "serving: sweep incomplete")
	}
	for _, p := range a.Points {
		if p.Shed != 0 || p.Expired != 0 || p.BackendErrs != 0 {
			v = append(v, fmt.Sprintf("serving[%s]: lossy run (shed=%d expired=%d errs=%d)",
				p.Name, p.Shed, p.Expired, p.BackendErrs))
		}
	}
	base := a.Points[0]
	bestP99 := -1.0
	for _, p := range a.Points[1:] {
		if p.QPS <= base.QPS {
			v = append(v, fmt.Sprintf("serving: batch=%d QPS %.0f not above batch=1 QPS %.0f",
				p.MaxBatch, p.QPS, base.QPS))
		}
		if bestP99 < 0 || p.P99 < bestP99 {
			bestP99 = p.P99
		}
	}
	if bestP99 > base.P99 {
		v = append(v, fmt.Sprintf("serving: best batched p99 %.6fs worse than batch=1 p99 %.6fs",
			bestP99, base.P99))
	}
	uncached, cached := a.Points[len(a.Points)-2], a.Points[len(a.Points)-1]
	if cached.HitRate <= 0.1 {
		v = append(v, fmt.Sprintf("serving: cache hit rate %.2f too low for Zipf load", cached.HitRate))
	}
	if cached.P50 >= uncached.P50 {
		v = append(v, fmt.Sprintf("serving: cache did not reduce p50 (%.6fs vs %.6fs)", cached.P50, uncached.P50))
	}
	if a.Tracing != nil {
		// Tracing must cost under 5% of mean latency — that is the budget
		// that justifies tracing every request by default. The 500us
		// absolute term is the smoke-scale noise floor: per-request span
		// work costs single-digit microseconds, so a real tracing
		// regression shows up as milliseconds, while scheduler jitter on
		// a loaded host routinely moves a few-millisecond mean by a few
		// hundred microseconds. The relative bound dominates at
		// production-scale latencies.
		if limit := a.Tracing.MeanOffSeconds*1.05 + 500e-6; a.Tracing.MeanOnSeconds > limit {
			v = append(v, fmt.Sprintf("serving: tracing mean overhead %.1f%% (%.6fs -> %.6fs) exceeds the 5%% budget",
				a.Tracing.OverheadPct, a.Tracing.MeanOffSeconds, a.Tracing.MeanOnSeconds))
		}
	}
	return v
}

// servingArtifact flattens measured points into the artifact form.
func servingArtifact(points []ServingPoint) *ServingArtifact {
	a := &ServingArtifact{}
	for _, pt := range points {
		a.Points = append(a.Points, ServingPointArtifact{
			Name:          pt.Policy.Name,
			MaxBatch:      pt.Policy.MaxBatch,
			CacheSize:     pt.Policy.CacheSize,
			QPS:           pt.QPS,
			MeanBatchSize: pt.Stats.MeanBatchSize,
			HitRate:       pt.Stats.HitRate(),
			P50:           pt.Stats.Latency.P50,
			P95:           pt.Stats.Latency.P95,
			P99:           pt.Stats.Latency.P99,
			Shed:          pt.Stats.Shed,
			Expired:       pt.Stats.Expired,
			BackendErrs:   pt.Stats.BackendErrs,
		})
	}
	return a
}

// servingReport renders measured serving points (and, when measured, the
// tracing-overhead pair) as the experiment report.
func servingReport(points []ServingPoint, tracing *ServingTracingArtifact) *Report {
	art := servingArtifact(points)
	art.Tracing = tracing
	rep := &Report{
		ID:       "serving",
		Title:    "Online serving: micro-batching and caching vs QPS and tail latency",
		Artifact: art,
	}
	t := metrics.NewTable(
		fmt.Sprintf("Serving sweep (%s, %d closed-loop clients, Zipf query popularity)",
			dataset.SIFT1B.Name, servingClients),
		"policy", "QPS", "mean batch", "coalesced", "hit rate", "p50", "p95", "p99", "shed")
	for _, pt := range points {
		t.AddRow(pt.Policy.Name,
			metrics.F(pt.QPS),
			metrics.F(pt.Stats.MeanBatchSize),
			fmt.Sprintf("%d", pt.Stats.Coalesced),
			metrics.Pct(pt.Stats.HitRate()),
			metrics.Seconds(pt.Stats.Latency.P50),
			metrics.Seconds(pt.Stats.Latency.P95),
			metrics.Seconds(pt.Stats.Latency.P99),
			fmt.Sprintf("%d", pt.Stats.Shed))
	}
	rep.Tables = append(rep.Tables, t)

	base, batched, cached := points[0], points[1], points[len(points)-1]
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("micro-batching (batch=8) vs none: %.2fx QPS, p99 %s -> %s",
			batched.QPS/base.QPS,
			metrics.Seconds(base.Stats.Latency.P99), metrics.Seconds(batched.Stats.Latency.P99)),
		fmt.Sprintf("result cache under Zipf load: hit rate %s, p50 %s -> %s",
			metrics.Pct(cached.Stats.HitRate()),
			metrics.Seconds(points[len(points)-2].Stats.Latency.P50),
			metrics.Seconds(cached.Stats.Latency.P50)),
		"expected shape: batch >= 8 strictly above batch=1 QPS at equal-or-lower p99; cache cuts p50 further")
	if tracing != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"tracing every request: mean %s (off) -> %s (on), %.1f%% overhead (budget 5%%); p99 %s -> %s",
			metrics.Seconds(tracing.MeanOffSeconds), metrics.Seconds(tracing.MeanOnSeconds),
			tracing.OverheadPct,
			metrics.Seconds(tracing.P99OffSeconds), metrics.Seconds(tracing.P99OnSeconds)))
	}
	return rep
}

// servingClients is the closed-loop client count; enough concurrency to
// fill micro-batches without oversubscribing small CI machines.
const servingClients = 16

// ServingCurve measures every policy on the harness' default engine and
// returns the raw points (the Serving experiment renders them; tests
// assert on them directly).
func (c *Context) ServingCurve(policies []ServingPolicy) ([]ServingPoint, error) {
	s := c.getSetup(dataset.SIFT1B, c.O.IVFGrid[0])
	nprobe := c.O.NProbeGrid[0]
	cfg := c.upannsConfig(nprobe)
	e, err := c.getEngine(s, cfg, buildKey(cfg), c.O.DPUs)
	if err != nil {
		return nil, err
	}

	total := 10 * c.O.Queries
	if total < 400 {
		total = 400
	}
	perClient := (total + servingClients - 1) / servingClients

	// Two interleaved sweep rounds, keeping each policy's higher-QPS
	// point: the acceptance shape compares policies against each other,
	// and a noise burst on a shared host that hits a single policy's
	// only run would invert a comparison the code did not. Round-robin
	// order (full sweep, then full sweep again) spreads any load ramp
	// across all policies instead of concentrating it on the last one.
	// One round under the race detector, where runs cost multiples and
	// only structural shapes are asserted.
	rounds := 2
	if raceEnabled {
		rounds = 1
	}
	points := make([]ServingPoint, len(policies))
	for round := 0; round < rounds; round++ {
		for i, p := range policies {
			pt, err := c.runServingPolicy(e, s.queries, p, perClient, nil)
			if err != nil {
				return nil, fmt.Errorf("serving policy %q: %w", p.Name, err)
			}
			if round == 0 || pt.QPS > points[i].QPS {
				points[i] = pt
			}
		}
	}
	return points, nil
}

// ServingTracingOverhead measures the cost of tracing every request: the
// batch=8 policy driven twice under identical closed-loop load, spans
// off then spans on (a full tracer — head sampling 1, retention rings
// live — so every request pays span allocation, stage recording, and the
// ring push). The artifact's Violations pins the mean overhead under 5%.
func (c *Context) ServingTracingOverhead() (*ServingTracingArtifact, error) {
	s := c.getSetup(dataset.SIFT1B, c.O.IVFGrid[0])
	cfg := c.upannsConfig(c.O.NProbeGrid[0])
	e, err := c.getEngine(s, cfg, buildKey(cfg), c.O.DPUs)
	if err != nil {
		return nil, err
	}
	total := 10 * c.O.Queries
	if total < 400 {
		total = 400
	}
	perClient := (total + servingClients - 1) / servingClients
	p := ServingPolicy{Name: "batch=8 (tracing pair)", MaxBatch: 8, Linger: 200 * time.Microsecond}

	// Interleave off/on passes and keep each side's best (lowest) mean:
	// on a shared host a noisy phase hitting only one side would swamp
	// the 5% budget this artifact is checked against. The within-round
	// order alternates (off/on, then on/off) so a monotone load ramp on
	// the host penalizes both sides equally instead of whichever runs
	// second. Best-of keeps the ratio a property of the code rather than
	// of the machine's moment; the best p99s ride along for visibility.
	// Under the race detector one round suffices: the run only feeds
	// structural checks there, and every extra round costs seconds of
	// instrumented serving.
	tracingReps := 5
	if raceEnabled {
		tracingReps = 1
	}
	art := &ServingTracingArtifact{
		MeanOffSeconds: -1, MeanOnSeconds: -1, P99OffSeconds: -1, P99OnSeconds: -1,
	}
	runOff := func() error {
		off, err := c.runServingPolicy(e, s.queries, p, perClient, nil)
		if err != nil {
			return fmt.Errorf("serving tracing-off run: %w", err)
		}
		if art.MeanOffSeconds < 0 || off.Stats.Latency.Mean < art.MeanOffSeconds {
			art.MeanOffSeconds = off.Stats.Latency.Mean
		}
		if art.P99OffSeconds < 0 || off.Stats.Latency.P99 < art.P99OffSeconds {
			art.P99OffSeconds = off.Stats.Latency.P99
		}
		return nil
	}
	runOn := func() error {
		on, err := c.runServingPolicy(e, s.queries, p, perClient, obs.NewTracer(obs.TracerConfig{}))
		if err != nil {
			return fmt.Errorf("serving tracing-on run: %w", err)
		}
		if art.MeanOnSeconds < 0 || on.Stats.Latency.Mean < art.MeanOnSeconds {
			art.MeanOnSeconds = on.Stats.Latency.Mean
		}
		if art.P99OnSeconds < 0 || on.Stats.Latency.P99 < art.P99OnSeconds {
			art.P99OnSeconds = on.Stats.Latency.P99
		}
		return nil
	}
	for i := 0; i < tracingReps; i++ {
		first, second := runOff, runOn
		if i%2 == 1 {
			first, second = runOn, runOff
		}
		if err := first(); err != nil {
			return nil, err
		}
		if err := second(); err != nil {
			return nil, err
		}
	}
	art.OverheadPct = (art.MeanOnSeconds/art.MeanOffSeconds - 1) * 100
	return art, nil
}

// runServingPolicy drives one policy with closed-loop Zipfian clients and
// returns the measured point. A non-nil tracer traces every request
// (span instrumentation active through the whole serve path plus ring
// retention); nil leaves the request contexts bare, so all span calls
// no-op on nil receivers — the tracing-off baseline.
func (c *Context) runServingPolicy(e *core.Engine, pool *vecmath.Matrix, p ServingPolicy, perClient int, tracer *obs.Tracer) (ServingPoint, error) {
	srv, err := serve.NewServer(serve.Config{
		K:              c.O.K,
		MaxBatch:       p.MaxBatch,
		MaxLinger:      p.Linger,
		QueueDepth:     4096,
		DefaultTimeout: 60 * time.Second,
		CacheSize:      p.CacheSize,
	}, serve.NewEngineBackend(e))
	if err != nil {
		return ServingPoint{}, err
	}

	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	start := time.Now()
	for w := 0; w < servingClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Zipf exponent ~1 matches the access-skew regime of Fig. 4a;
			// per-client seeds decorrelate the streams.
			stream := workload.NewQueryStream(pool, 1.0, c.O.Seed+uint64(w)*7919)
			for i := 0; i < perClient; i++ {
				tr := tracer.Start("serve.request")
				_, err := srv.Search(obs.WithTrace(context.Background(), tr), stream.Next())
				tracer.Finish(tr, err)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	srv.Close()
	if firstErr != nil {
		return ServingPoint{}, firstErr
	}
	st := srv.Stats()
	return ServingPoint{
		Policy: p,
		QPS:    float64(st.Completed+st.CacheHits) / elapsed,
		Stats:  st,
	}, nil
}
