package bench

import (
	"fmt"
	"time"

	"repro/internal/ivfpq"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pq"
	"repro/internal/vecmath"
	"repro/internal/xrand"
)

// The kernelbench experiment: per-kernel achieved bandwidth of the
// blocked ADC scan path against the retained scalar reference, reported
// next to the archmodel CPU roofline, plus the end-to-end Search vs
// SearchReference speedup. Results must be bit-identical between the two
// paths (checked inline here and pinned by the golden tests), so every
// ratio below is a pure speed comparison of equivalent computations.
//
// Regression gating works on speedup ratios, not absolute GB/s: absolute
// bandwidth varies across CI hosts by more than any kernel regression
// we care about, while the fast/reference ratio is a property of the
// code. kernelBaselineSpeedup holds the committed baselines; a run
// regressing more than kernelRegressionMargin below its baseline fails
// the bench gate.

// kernelBaselineSpeedup is the committed per-kernel baseline: the
// fast-path / reference-path bandwidth ratio each kernel achieved when
// the blocked scans landed. Conservative (the margin below absorbs host
// noise); raise them when the kernels speed up for good.
var kernelBaselineSpeedup = map[string]float64{
	"scan_f32":          1.5,
	"scan_u16":          2.25,
	"scan_u16_filtered": 1.6,
	// search_e2e is diluted by probe and heap work outside the kernels
	// and measures noisier than the pure scans (observed 1.25-1.55x on
	// one host), so its baseline is set to the low end of that range.
	"search_e2e": 1.3,
}

// kernelRegressionMargin is how far below its committed baseline a
// measured speedup may land before the artifact reports a violation
// (>10% is a regression).
const kernelRegressionMargin = 0.9

// minU16ScanSpeedup is the acceptance floor for the uint16-LUT ADC scan
// — the kernel the DPU arithmetic rides on must be at least 2x the
// scalar reference, independent of the committed baseline.
const minU16ScanSpeedup = 2.0

// KernelPointArtifact is one kernel's measured bandwidth pair.
type KernelPointArtifact struct {
	Name     string  `json:"name"`
	RefGBps  float64 `json:"ref_gbps"`
	FastGBps float64 `json:"fast_gbps"`
	Speedup  float64 `json:"speedup"`
	// RooflineFraction is FastGBps over the archmodel CPU scan bound —
	// how much of the modelled sustainable bandwidth one core achieves.
	RooflineFraction float64 `json:"roofline_fraction"`
}

// KernelsArtifact is the kernelbench machine-readable result
// (BENCH_kernels.json); Violations makes it the bench-gate regression
// check for raw kernel speed.
type KernelsArtifact struct {
	M            int     `json:"m"`
	Vectors      int     `json:"vectors"`
	RooflineGBps float64 `json:"roofline_gbps"`

	Points []KernelPointArtifact `json:"points"`

	// LUT construction has one implementation (both paths share it), so
	// it reports throughput, not a speedup.
	LUTEntriesPerSec float64 `json:"lut_entries_per_sec"`

	// End-to-end single-query search, quantized arithmetic, scratch
	// reused: the optimized pipeline vs the retained scalar reference.
	SearchQPSFast float64 `json:"search_qps_fast"`
	SearchQPSRef  float64 `json:"search_qps_ref"`
	SearchSpeedup float64 `json:"search_speedup"`

	// CounterGBps is the achieved scan bandwidth the process-global
	// obs.Kernel counters observed during the fast end-to-end run — the
	// same number /metrics exports, closing the loop between this
	// harness and production observability.
	CounterGBps float64 `json:"counter_gbps"`

	// Mismatches counts result divergences between the fast and
	// reference paths observed while measuring (always 0; any other
	// value is a correctness violation, not a perf number).
	Mismatches int `json:"mismatches"`
}

// Violations is the kernel regression gate: bit-identical results,
// nonzero achieved bandwidth everywhere, the u16 scan at least 2x its
// scalar reference, and no kernel more than 10% below its committed
// baseline ratio.
func (a *KernelsArtifact) Violations() []string {
	var v []string
	if a.Mismatches > 0 {
		v = append(v, fmt.Sprintf("kernels: %d fast/reference result mismatches", a.Mismatches))
	}
	if len(a.Points) == 0 {
		return append(v, "kernels: no kernel measurements")
	}
	for _, p := range a.Points {
		if p.FastGBps <= 0 {
			v = append(v, fmt.Sprintf("kernels[%s]: achieved bandwidth is zero", p.Name))
		}
		if p.Name == "scan_u16" && p.Speedup < minU16ScanSpeedup {
			v = append(v, fmt.Sprintf("kernels[%s]: speedup %.2fx below the %.1fx acceptance floor",
				p.Name, p.Speedup, minU16ScanSpeedup))
		}
		if base, ok := kernelBaselineSpeedup[p.Name]; ok && p.Speedup < base*kernelRegressionMargin {
			v = append(v, fmt.Sprintf("kernels[%s]: speedup %.2fx regressed >10%% below the %.2fx baseline",
				p.Name, p.Speedup, base))
		}
	}
	if a.SearchQPSFast <= 0 || a.SearchQPSRef <= 0 {
		v = append(v, "kernels: end-to-end search produced no throughput")
	} else if base := kernelBaselineSpeedup["search_e2e"]; a.SearchSpeedup < base*kernelRegressionMargin {
		v = append(v, fmt.Sprintf("kernels[search_e2e]: speedup %.2fx regressed >10%% below the %.2fx baseline",
			a.SearchSpeedup, base))
	}
	if a.LUTEntriesPerSec <= 0 {
		v = append(v, "kernels: LUT construction produced no throughput")
	}
	return v
}

// bestOf runs f reps times and returns the fastest wall time — the
// standard defense against scheduler noise on shared CI hosts.
func bestOf(reps int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

// bestOfPair interleaves reference and fast passes rep by rep and keeps
// each side's best. Interleaving matters for the speedup ratios: on a
// shared host a noisy phase that hit only one side would skew the ratio
// far more than it skews either absolute number.
func bestOfPair(reps int, refFn, fastFn func()) (refBest, fastBest time.Duration) {
	refBest, fastBest = time.Duration(1<<63-1), time.Duration(1<<63-1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		refFn()
		if d := time.Since(t0); d < refBest {
			refBest = d
		}
		t0 = time.Now()
		fastFn()
		if d := time.Since(t0); d < fastBest {
			fastBest = d
		}
	}
	return refBest, fastBest
}

// Kernels measures the ADC scan kernels and the end-to-end search path.
func (c *Context) Kernels() (*Report, error) {
	const (
		m    = 16
		nvec = 1 << 16 // 64k codes x 16 B = 1 MB per pass
		reps = 15
	)
	r := xrand.New(c.O.Seed + 41)
	lut := make(pq.LUT, m*pq.CodebookSize)
	for i := range lut {
		lut[i] = float32(r.Float64()) * 4
	}
	qtab := make([]uint16, len(lut))
	pq.QuantizeWithScaleInto(qtab, lut, 1024)
	codes := make([]uint8, nvec*m)
	for i := range codes {
		codes[i] = uint8(r.Intn(pq.CodebookSize))
	}
	scanBytes := float64(nvec * m)

	art := &KernelsArtifact{M: m, Vectors: nvec}
	art.RooflineGBps = obs.Kernel.Snapshot().RooflineGBps

	dists := make([]float32, nvec)
	ref := make([]float32, nvec)
	qdists := make([]uint32, nvec)
	qref := make([]uint32, nvec)

	gbps := func(bytes float64, d time.Duration) float64 { return bytes / d.Seconds() / 1e9 }
	point := func(name string, bytes float64, refD, fastD time.Duration) {
		p := KernelPointArtifact{
			Name:     name,
			RefGBps:  gbps(bytes, refD),
			FastGBps: gbps(bytes, fastD),
			Speedup:  refD.Seconds() / fastD.Seconds(),
		}
		if art.RooflineGBps > 0 {
			p.RooflineFraction = p.FastGBps / art.RooflineGBps
		}
		art.Points = append(art.Points, p)
	}

	// Float32 LUT scan: blocked kernel vs per-vector scalar calls.
	refD, fastD := bestOfPair(reps, func() {
		for i := 0; i < nvec; i++ {
			ref[i] = pq.ADCDistance(lut, codes[i*m:(i+1)*m])
		}
	}, func() {
		for base := 0; base < nvec; base += pq.ScanBlock {
			bn := nvec - base
			if bn > pq.ScanBlock {
				bn = pq.ScanBlock
			}
			pq.ScanDists(dists[base:base+bn], lut, codes[base*m:(base+bn)*m], m)
		}
	})
	for i := range dists {
		if dists[i] != ref[i] {
			art.Mismatches++
		}
	}
	point("scan_f32", scanBytes, refD, fastD)

	// Quantized uint16 LUT scan — the DPU arithmetic.
	refD, fastD = bestOfPair(reps, func() {
		for i := 0; i < nvec; i++ {
			qref[i] = pq.QDistanceTab(qtab, codes[i*m:(i+1)*m])
		}
	}, func() {
		for base := 0; base < nvec; base += pq.ScanBlock {
			bn := nvec - base
			if bn > pq.ScanBlock {
				bn = pq.ScanBlock
			}
			pq.ScanQDists(qdists[base:base+bn], qtab, codes[base*m:(base+bn)*m], m)
		}
	})
	for i := range qdists {
		if qdists[i] != qref[i] {
			art.Mismatches++
		}
	}
	point("scan_u16", scanBytes, refD, fastD)

	// Fused filtered scan at ~50% selectivity: gather kernel over
	// precollected positions vs a scalar loop branching per vector.
	allow := make([]bool, nvec)
	var at []int32
	for i := range allow {
		allow[i] = r.Intn(2) == 0
		if allow[i] {
			at = append(at, int32(i))
		}
	}
	filteredBytes := float64(len(at) * m)
	refD, fastD = bestOfPair(reps, func() {
		j := 0
		for i := 0; i < nvec; i++ {
			if !allow[i] {
				continue
			}
			qref[j] = pq.QDistanceTab(qtab, codes[i*m:(i+1)*m])
			j++
		}
	}, func() {
		for base := 0; base < len(at); base += pq.ScanBlock {
			bn := len(at) - base
			if bn > pq.ScanBlock {
				bn = pq.ScanBlock
			}
			pq.ScanQDistsAt(qdists[base:base+bn], qtab, codes, m, at[base:base+bn])
		}
	})
	for j := 0; j < len(at); j++ {
		if qdists[j] != qref[j] {
			art.Mismatches++
		}
	}
	point("scan_u16_filtered", filteredBytes, refD, fastD)

	// LUT construction throughput (shared implementation; no speedup).
	dim := 32
	q := ivfpq.Train(randMatrix(r, 2048, dim), ivfpq.Params{NList: 4, M: m, KSub: c.O.KSub, Seed: c.O.Seed}).PQ
	vec := make([]float32, dim)
	for i := range vec {
		vec[i] = float32(r.NormFloat64())
	}
	lutD := bestOf(reps, func() {
		for i := 0; i < 64; i++ {
			q.BuildLUTInto(lut, vec)
			pq.QuantizeWithScaleInto(qtab, lut, 1024)
		}
	})
	art.LUTEntriesPerSec = float64(64*q.M*q.KSub) / lutD.Seconds()

	// End-to-end: the full optimized pipeline vs the retained scalar
	// reference over a real index, quantized arithmetic, one scratch.
	if err := c.kernelsEndToEnd(art); err != nil {
		return nil, err
	}

	t := metrics.NewTable("Kernel bandwidth vs scalar reference (best of runs)",
		"kernel", "ref GB/s", "fast GB/s", "speedup", "of roofline")
	for _, p := range art.Points {
		t.AddRow(p.Name, fmt.Sprintf("%.2f", p.RefGBps), fmt.Sprintf("%.2f", p.FastGBps),
			fmt.Sprintf("%.2fx", p.Speedup), metrics.Pct(p.RooflineFraction))
	}
	e2e := metrics.NewTable("End-to-end single-query search (quantized, scratch reused)",
		"path", "QPS")
	e2e.AddRow("Search (blocked kernels)", metrics.F(art.SearchQPSFast))
	e2e.AddRow("SearchReference (scalar)", metrics.F(art.SearchQPSRef))
	e2e.AddRow("speedup", fmt.Sprintf("%.2fx", art.SearchSpeedup))

	return &Report{
		ID:     "kernels",
		Title:  "ADC kernel bandwidth vs roofline",
		Tables: []*metrics.Table{t, e2e},
		Notes: []string{
			fmt.Sprintf("archmodel CPU roofline: %.1f GB/s (whole socket); single-core scalar gather saturates load ports well below it", art.RooflineGBps),
			fmt.Sprintf("LUT construction: %.0f entries/s", art.LUTEntriesPerSec),
			fmt.Sprintf("obs.Kernel counters during the fast run: %.2f GB/s achieved", art.CounterGBps),
		},
		Artifact: art,
	}, nil
}

// kernelsEndToEnd measures Search vs SearchReference QPS over a small
// trained index and captures the obs.Kernel bandwidth delta of the fast
// run.
func (c *Context) kernelsEndToEnd(art *KernelsArtifact) error {
	r := xrand.New(c.O.Seed + 43)
	const dim = 32
	rows := c.O.N / 2
	if rows > 24000 {
		rows = 24000
	}
	data := randMatrix(r, rows, dim)
	ix := ivfpq.Train(data, ivfpq.Params{
		NList: 32, M: 16, KSub: c.O.KSub, Seed: c.O.Seed, TrainSub: c.O.TrainSub,
	})
	ix.Add(data, 0)
	nq := c.O.Queries
	if nq > 100 {
		nq = 100
	}
	queries := randMatrix(r, nq, dim)
	opts := ivfpq.SearchOpts{NProbe: 8, K: c.O.K, Quantized: true}

	// Correctness cross-check rides along on the first few queries.
	for qi := 0; qi < nq && qi < 8; qi++ {
		got, _ := ix.Search(queries.Row(qi), opts)
		want, _ := ix.SearchReference(queries.Row(qi), opts)
		if len(got) != len(want) {
			art.Mismatches++
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				art.Mismatches++
			}
		}
	}

	scratch := ivfpq.NewScratch()
	before := obs.Kernel.Snapshot()
	refD, fastD := bestOfPair(6, func() {
		for qi := 0; qi < nq; qi++ {
			ix.SearchReference(queries.Row(qi), opts)
		}
	}, func() {
		o := opts
		o.Scratch = scratch
		for qi := 0; qi < nq; qi++ {
			ix.Search(queries.Row(qi), o)
		}
	})
	// SearchReference does not record into obs.Kernel, so the counter
	// delta spans exactly the fast passes.
	after := obs.Kernel.Snapshot()
	if dt := after.ScanSeconds - before.ScanSeconds; dt > 0 {
		art.CounterGBps = float64(after.ScanBytes-before.ScanBytes) / dt / 1e9
	}
	art.SearchQPSFast = float64(nq) / fastD.Seconds()
	art.SearchQPSRef = float64(nq) / refD.Seconds()
	art.SearchSpeedup = art.SearchQPSFast / art.SearchQPSRef
	return nil
}

// randMatrix fills a rows x dim matrix with unit Gaussians.
func randMatrix(r *xrand.RNG, rows, dim int) *vecmath.Matrix {
	m := vecmath.NewMatrix(rows, dim)
	for i := range m.Data {
		m.Data[i] = float32(r.NormFloat64())
	}
	return m
}
