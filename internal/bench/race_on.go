//go:build race

package bench

// raceEnabled reports whether the race detector instruments this build.
// Wall-clock performance assertions (e.g. the updates experiment's read
// p99 ratio) are skipped under instrumentation: the detector slows and
// reschedules everything, so those ratios are checked only by the
// uninstrumented CI bench-smoke job.
const raceEnabled = true
