// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (Section 5), each emitting printable tables
// whose rows mirror what the paper reports. Absolute numbers come from the
// scaled-down simulated deployment; EXPERIMENTS.md records the paper-vs-
// measured comparison for every artifact.
//
// Scaling rule: the paper runs 1B vectors on 896 DPUs with IVF
// {4096, 8192, 16384} and nprobe {64, 128, 256}. The harness defaults keep
// the structural ratios (clusters per DPU, probed fraction, vectors per
// cluster large enough that the distance stage dominates) at a size a unit
// machine simulates in minutes: N=48k vectors on 32 DPUs with IVF
// {32, 64, 128} and nprobe {4, 8, 16}.
package bench

import (
	"fmt"
	"sort"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ivfpq"
	"repro/internal/metrics"
	"repro/internal/pim"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// Options sizes the scaled-down experiments.
type Options struct {
	N          int   // base vectors per dataset
	Queries    int   // queries per batch (paper: 1000)
	DPUs       int   // simulated DPUs (paper: 896)
	IVFGrid    []int // cluster counts (paper: 4096, 8192, 16384)
	NProbeGrid []int // probes (paper: 64, 128, 256)
	K          int   // top-k (paper default 10)
	KSub       int   // PQ centroids per subspace; scaled below 256 so the
	// fixed per-probe LUT cost keeps the paper's ratio to the reduced
	// cluster sizes
	TrainSub int // training subsample
	Seed     uint64
}

// DefaultOptions returns the scaled defaults described in the package
// comment.
func DefaultOptions() Options {
	return Options{
		N:          48000,
		Queries:    200,
		DPUs:       32,
		IVFGrid:    []int{32, 64, 128},
		NProbeGrid: []int{4, 8, 16},
		K:          10,
		KSub:       64,
		TrainSub:   8192,
		Seed:       1,
	}
}

// QuickOptions returns a reduced grid for fast smoke runs (tests, CI).
func QuickOptions() Options {
	o := DefaultOptions()
	o.N = 20000
	o.Queries = 80
	o.DPUs = 16
	o.IVFGrid = []int{16, 32}
	o.NProbeGrid = []int{4, 8}
	return o
}

// Artifact is a machine-readable experiment result: JSON-serializable
// and self-checking. cmd/upanns-bench writes artifacts as BENCH_<id>.json
// and the CI bench-smoke job fails on any reported violation.
type Artifact interface {
	// Violations returns the acceptance-shape regressions this run
	// exhibits; empty means healthy.
	Violations() []string
}

// Report is one experiment's output.
type Report struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	Notes  []string
	// Artifact is the experiment's machine-readable payload (nil for
	// table-only experiments).
	Artifact Artifact
}

// String renders the report.
func (r *Report) String() string {
	s := fmt.Sprintf("=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		s += t.String() + "\n"
	}
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// setup bundles one dataset's trained index and query batch.
type setup struct {
	spec    dataset.Spec
	ds      *dataset.Dataset
	ix      *ivfpq.Index
	queries *vecmath.Matrix
	freqs   []float64
}

// Context caches dataset/index builds across experiments; create one and
// run the experiments you need against it.
type Context struct {
	O       Options
	setups  map[string]*setup
	engines map[string]*core.Engine
	grid    map[string]*gridResult
}

// NewContext returns a fresh harness context.
func NewContext(o Options) *Context {
	return &Context{
		O:       o,
		setups:  map[string]*setup{},
		engines: map[string]*core.Engine{},
		grid:    map[string]*gridResult{},
	}
}

// getSetup builds (or returns cached) dataset + index for spec at nlist.
func (c *Context) getSetup(spec dataset.Spec, nlist int) *setup {
	key := fmt.Sprintf("%s/%d", spec.Name, nlist)
	if s, ok := c.setups[key]; ok {
		return s
	}
	ds := dataset.Generate(spec, c.O.N, c.O.Seed)
	ix := ivfpq.Train(ds.Vectors, ivfpq.Params{
		NList: nlist, M: spec.M, KSub: c.O.KSub, Seed: c.O.Seed + 7, TrainSub: c.O.TrainSub,
	})
	ix.Add(ds.Vectors, 0)
	queries := ds.Queries(c.O.Queries, c.O.Seed+13)
	// Historical frequencies from an independent sample, as the offline
	// phase would observe.
	hist := ds.Queries(c.O.Queries, c.O.Seed+29)
	maxProbe := 1
	for _, np := range c.O.NProbeGrid {
		if np > maxProbe {
			maxProbe = np
		}
	}
	freqs := workload.ClusterFrequencies(ix.Coarse, hist, maxProbe)
	s := &setup{spec: spec, ds: ds, ix: ix, queries: queries, freqs: freqs}
	c.setups[key] = s
	return s
}

// newSystem builds a PIM system with n DPUs (defaults to Options.DPUs).
func (c *Context) newSystem(n int) *pim.System {
	if n <= 0 {
		n = c.O.DPUs
	}
	spec := pim.DefaultSpec()
	spec.NumDIMMs = 1
	spec.DPUsPerDIMM = n
	return pim.NewSystem(spec)
}

// getEngine builds (or returns cached) an UpANNS engine; cfgKey must
// uniquely describe cfg's build-relevant fields.
func (c *Context) getEngine(s *setup, cfg core.Config, cfgKey string, dpus int) (*core.Engine, error) {
	key := fmt.Sprintf("%s/%d/%d/%s", s.spec.Name, s.ix.NList(), dpus, cfgKey)
	if e, ok := c.engines[key]; ok {
		// Reconfigure the search-time knobs on the cached engine if they
		// match the build-time layout; otherwise rebuild.
		if e.Cfg.Tasklets == cfg.Tasklets && e.Cfg.VectorsPerRead == cfg.VectorsPerRead && e.Cfg.K == cfg.K {
			e.Cfg.NProbe = cfg.NProbe
			return e, nil
		}
	}
	e, err := core.Build(s.ix, c.newSystem(dpus), s.freqs, cfg)
	if err != nil {
		return nil, err
	}
	c.engines[key] = e
	return e, nil
}

func buildKey(cfg core.Config) string {
	return fmt.Sprintf("t%d-r%d-k%d-cae%v-pl%v-pr%v",
		cfg.Tasklets, cfg.VectorsPerRead, cfg.K, cfg.UseCAE, cfg.UsePlacement, cfg.UsePruning)
}

// upannsConfig returns the default engine config at the harness K.
func (c *Context) upannsConfig(nprobe int) core.Config {
	cfg := core.DefaultConfig()
	cfg.NProbe = nprobe
	cfg.K = c.O.K
	cfg.Seed = c.O.Seed
	return cfg
}

// naiveConfig returns the PIM-naive config at the harness K.
func (c *Context) naiveConfig(nprobe int) core.Config {
	cfg := core.NaiveConfig()
	cfg.NProbe = nprobe
	cfg.K = c.O.K
	cfg.Seed = c.O.Seed
	return cfg
}

// paperScaleIndexBytes models the billion-scale resident size of a
// dataset's index on a conventional device (used for the GPU capacity
// checks in Fig. 12 at paper scale).
func paperScaleIndexBytes(spec dataset.Spec) int64 {
	const paperN = 1_000_000_000
	perVec := int64(spec.M + 8) // codes + id
	if spec.Name == dataset.DEEP1B.Name {
		// The paper marks Faiss-GPU out-of-memory on DEEP1B (Fig. 12,
		// blue X): the GPU build additionally keeps re-ranking vectors
		// resident, which exceeds the A100's 80 GB.
		perVec += int64(spec.Dim) * 4
	}
	return paperN * perVec
}

// platformScale is the fraction of the paper's 896-DPU deployment this
// harness simulates; the CPU/GPU comparators are scaled by the same
// factor so Table 1's platform ratios are preserved at reduced size.
func (c *Context) platformScale() float64 {
	return float64(c.O.DPUs) / 896.0
}

// runBaselines executes the CPU and GPU comparators for one setting, at
// the harness' platform scale.
func (c *Context) runBaselines(s *setup, queries *vecmath.Matrix, nprobe, k int) (cpu, gpu *baseline.Result, err error) {
	f := c.platformScale()
	cb := baseline.NewCPU(s.ix)
	cb.Dev = cb.Dev.Scaled(f)
	cpu, err = cb.SearchBatch(queries, nprobe, k)
	if err != nil {
		return nil, nil, err
	}
	g := baseline.NewGPU(s.ix)
	g.Dev = g.Dev.Scaled(f)
	g.ModelIndexBytes = paperScaleIndexBytes(s.spec)
	gpu, err = g.SearchBatch(queries, nprobe, k)
	return cpu, gpu, err
}

// Experiment is a named runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Context) (*Report, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Hardware specifications", (*Context).Table1},
		{"intro", "Graph vs compression motivation", (*Context).Intro},
		{"fig1", "CPU/GPU stage breakdown vs dataset scale", (*Context).Fig1},
		{"fig4", "Cluster access/size/workload skew", (*Context).Fig4},
		{"fig7", "MRAM read latency vs transfer size", (*Context).Fig7},
		{"fig10", "QPS vs Faiss-CPU and PIM-naive", (*Context).Fig10},
		{"fig11", "Workload balance (max/avg) ablation", (*Context).Fig11},
		{"fig12", "QPS and QPS/W vs Faiss-GPU", (*Context).Fig12},
		{"fig13", "QPS vs tasklets per DPU", (*Context).Fig13},
		{"fig14", "Co-occurrence encoding gain vs length reduction", (*Context).Fig14},
		{"fig15", "Top-k pruning time reduction", (*Context).Fig15},
		{"fig16", "Batch size vs query latency", (*Context).Fig16},
		{"fig17", "MRAM read size vs QPS", (*Context).Fig17},
		{"fig18", "Top-k size vs QPS", (*Context).Fig18},
		{"fig19", "Query time breakdown per architecture", (*Context).Fig19},
		{"fig20", "Scalability vs DPU count", (*Context).Fig20},
		{"kernels", "ADC kernel bandwidth vs roofline", (*Context).Kernels},
		{"recall", "Accuracy validation across backends", (*Context).RecallCheck},
		{"serving", "Online serving: batching/caching vs QPS and p99", (*Context).Serving},
		{"updates", "Streaming updates: recall and read tail under churn", (*Context).Updates},
		{"cluster", "Distributed sharded serving: recall parity and shard-loss behavior", (*Context).Cluster},
		{"filtered", "Filtered search: recall and tail latency vs selectivity", (*Context).Filtered},
		{"tiered", "Out-of-core tiered serving: exactness, tail and hit rate at 4x budget pressure", (*Context).Tiered},
		{"quality", "Search-quality plane: shadow-estimator accuracy and sampling overhead", (*Context).Quality},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}
