package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/topk"
	"repro/internal/vecmath"
)

// The cluster experiment measures the distributed serving tier
// (internal/cluster): a scatter-gather router fanning queries over live
// shard processes booted in-process behind the real shard HTTP surface.
// Three claims are pinned:
//
//   - recall parity: hash-partitioned shards searched in parallel and
//     merged in the float domain answer within 1% of a single-host
//     deployment of the same corpus (Section 5.5's "only query
//     distribution and result aggregation require cross-host
//     communication" — the merge must not cost accuracy);
//
//   - tail latency vs shard count: closed-loop client p50/p99 through
//     the router at 1, 2, and 3 shards, with the per-shard DPU count set
//     to floor(total/shards) — approximately a constant total budget;
//     the floor under-provisions non-divisible shard counts slightly
//     (e.g. 3x2=6 of 8 DPUs), so the curve is read as a shape, not an
//     exact iso-hardware comparison;
//
//   - shard-loss behavior: with one shard killed mid-run, every query
//     keeps answering (zero client-visible errors), recall degrades by
//     roughly the dead shard's corpus fraction, and the router reports
//     the fanouts as degraded.

// clusterClients is the closed-loop client count per measurement.
const clusterClients = 4

// ClusterPointArtifact is one shard-count operating point.
type ClusterPointArtifact struct {
	Shards  int     `json:"shards"`
	Queries int     `json:"queries"`
	Errors  int     `json:"errors"`
	Recall  float64 `json:"recall"`
	QPS     float64 `json:"qps"`
	P50     float64 `json:"p50_seconds"`
	P95     float64 `json:"p95_seconds"`
	P99     float64 `json:"p99_seconds"`
}

// ClusterArtifact is the experiment's machine-readable result
// (BENCH_cluster.json); Violations makes it self-checking.
type ClusterArtifact struct {
	BaseN        int     `json:"base_n"`
	K            int     `json:"k"`
	RecallSingle float64 `json:"recall_single_host"`

	Points []ClusterPointArtifact `json:"points"`

	// Kill drill (run at the largest shard count).
	KillShards     int     `json:"kill_shards"`
	KillLostFrac   float64 `json:"kill_lost_fraction"`
	KillPreRecall  float64 `json:"kill_recall_before"`
	KillPostRecall float64 `json:"kill_recall_after"`
	KillErrors     int     `json:"kill_errors"`
	KillDegraded   uint64  `json:"kill_degraded_fanouts"`
}

// Violations returns the acceptance-shape regressions this run exhibits
// (empty = healthy): scatter-gather recall within 1% of single-host,
// zero errors at every shard count, measured tails, and a kill drill
// that degrades recall — bounded by the lost corpus fraction — without
// a single client-visible error.
func (a *ClusterArtifact) Violations() []string {
	var v []string
	if len(a.Points) == 0 {
		v = append(v, "cluster: no shard-count points measured")
		return v
	}
	for _, p := range a.Points {
		if p.Errors > 0 {
			v = append(v, fmt.Sprintf("cluster[%d shards]: %d client-visible errors", p.Shards, p.Errors))
		}
		if p.P99 <= 0 {
			v = append(v, fmt.Sprintf("cluster[%d shards]: no tail latency measured", p.Shards))
		}
	}
	last := a.Points[len(a.Points)-1]
	if last.Recall < a.RecallSingle-0.01 {
		v = append(v, fmt.Sprintf("cluster: %d-shard recall %.4f more than 1%% below single-host %.4f",
			last.Shards, last.Recall, a.RecallSingle))
	}
	if a.KillErrors > 0 {
		v = append(v, fmt.Sprintf("cluster kill drill: %d client-visible errors — shard loss must degrade recall, not availability", a.KillErrors))
	}
	if a.KillDegraded == 0 {
		v = append(v, "cluster kill drill: router reported no degraded fanouts after the kill")
	}
	if floor := a.KillPreRecall * (1 - a.KillLostFrac) * 0.8; a.KillPostRecall < floor {
		v = append(v, fmt.Sprintf("cluster kill drill: post-kill recall %.4f below plausibility floor %.4f (pre %.4f, lost fraction %.2f)",
			a.KillPostRecall, floor, a.KillPreRecall, a.KillLostFrac))
	}
	return v
}

// Cluster runs the experiment and renders the report.
func (c *Context) Cluster() (*Report, error) {
	art, err := c.ClusterRun()
	if err != nil {
		return nil, err
	}
	return clusterReport(art), nil
}

// ClusterRun executes the sweep and kill drill, returning the raw
// artifact (tests assert on it directly; Cluster renders it).
func (c *Context) ClusterRun() (*ClusterArtifact, error) {
	s := c.getSetup(dataset.SIFT1B, c.O.IVFGrid[0])
	nprobe := c.O.NProbeGrid[len(c.O.NProbeGrid)-1]
	k := c.O.K
	truth := dataset.GroundTruth(s.ds.Vectors, s.queries, k)
	art := &ClusterArtifact{BaseN: s.ds.Vectors.Rows, K: k}

	// Single-host baseline over the identical corpus and operating point.
	eng, err := c.getEngine(s, c.upannsConfig(nprobe), buildKey(c.upannsConfig(nprobe)), 0)
	if err != nil {
		return nil, err
	}
	br, err := eng.SearchBatch(s.queries)
	if err != nil {
		return nil, err
	}
	art.RecallSingle = dataset.Recall(clampK(br.Results, k), truth)

	for _, shardCount := range []int{1, 2, 3} {
		perShardDPUs := c.O.DPUs / shardCount
		if perShardDPUs < 1 {
			perShardDPUs = 1
		}
		fleet, err := cluster.StartLocalShards(s.ds.Vectors, cluster.LocalOptions{
			Shards: shardCount, NList: c.O.IVFGrid[0], KSub: c.O.KSub, TrainSub: c.O.TrainSub,
			NProbe: nprobe, K: k, DPUs: perShardDPUs, Seed: c.O.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: booting %d shards: %w", shardCount, err)
		}
		// The prober is off (HealthInterval < 0): on a loaded CI machine a
		// slow /healthz probe could transiently exclude a healthy shard
		// and silently degrade a recall measurement. Shard-loss tolerance
		// is carried by the fanout and the breaker, which the kill drill
		// still exercises. Timeouts are generous for the same reason —
		// this experiment pins accuracy and error shapes, not absolute
		// wall-clock under ambient load.
		router, err := cluster.New(cluster.ShardURLs(fleet), cluster.Config{
			K:               k,
			SearchTimeout:   30 * time.Second,
			HealthInterval:  -1,
			BreakerCooldown: 500 * time.Millisecond,
		})
		if err != nil {
			closeFleet(fleet)
			return nil, err
		}

		pt, results := runCleanPass(router, s.queries)
		pt.Shards = shardCount
		pt.Recall = dataset.Recall(results, truth)
		art.Points = append(art.Points, pt)

		if shardCount == 3 {
			// Kill drill on the full fleet: pre-kill recall is this
			// point's measurement; kill one shard and re-run.
			victim := fleet[len(fleet)-1]
			degradedBefore := router.Stats().Degraded
			victim.Kill()
			killPt, killResults := runClusterClients(router, s.queries)
			art.KillShards = shardCount
			art.KillLostFrac = float64(len(victim.OwnedIDs)) / float64(s.ds.Vectors.Rows)
			art.KillPreRecall = pt.Recall
			art.KillPostRecall = dataset.Recall(killResults, truth)
			art.KillErrors = killPt.Errors
			art.KillDegraded = router.Stats().Degraded - degradedBefore
		}
		router.Close()
		closeFleet(fleet)
	}
	return art, nil
}

// runCleanPass runs runClusterClients, retrying (up to 3 passes) until a
// pass completes with zero errors and zero new degraded fanouts. Recall
// parity is an accuracy claim about the full fanout; a transient shard
// hiccup under ambient CI load silently removes a shard's candidates
// without erroring, so a parity measurement must come from a pass in
// which every fanout reached every shard. The kill drill deliberately
// bypasses this (degradation there is the point).
func runCleanPass(router *cluster.Router, queries *vecmath.Matrix) (ClusterPointArtifact, [][]topk.Candidate) {
	var pt ClusterPointArtifact
	var results [][]topk.Candidate
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			// Let an opened breaker reach half-open so the excluded shard
			// can rejoin before the retry pass.
			time.Sleep(600 * time.Millisecond)
		}
		before := router.Stats().Degraded
		pt, results = runClusterClients(router, queries)
		if pt.Errors == 0 && router.Stats().Degraded == before {
			break
		}
	}
	return pt, results
}

// runClusterClients drives every query through the router once, from
// clusterClients closed-loop clients, and returns the latency/throughput
// point plus per-query results (empty rows for failed queries).
func runClusterClients(router *cluster.Router, queries *vecmath.Matrix) (ClusterPointArtifact, [][]topk.Candidate) {
	lat := metrics.NewLatencyHistogram()
	results := make([][]topk.Candidate, queries.Rows)
	errCounts := make([]int, clusterClients)
	var wg sync.WaitGroup
	start := time.Now()
	for cl := 0; cl < clusterClients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for qi := cl; qi < queries.Rows; qi += clusterClients {
				t0 := time.Now()
				cands, err := router.Search(context.Background(), queries.Row(qi))
				if err != nil {
					errCounts[cl]++
					continue
				}
				lat.Observe(time.Since(t0).Seconds())
				results[qi] = cands
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	errs := 0
	for _, e := range errCounts {
		errs += e
	}
	snap := lat.Snapshot()
	pt := ClusterPointArtifact{
		Queries: queries.Rows,
		Errors:  errs,
		P50:     snap.P50,
		P95:     snap.P95,
		P99:     snap.P99,
	}
	if elapsed > 0 {
		pt.QPS = float64(queries.Rows-errs) / elapsed
	}
	return pt, results
}

// closeFleet shuts every local shard down.
func closeFleet(fleet []*cluster.LocalShard) {
	for _, s := range fleet {
		s.Close()
	}
}

// clampK trims engine results to k per query.
func clampK(res [][]topk.Candidate, k int) [][]topk.Candidate {
	for i, r := range res {
		if len(r) > k {
			res[i] = r[:k]
		}
	}
	return res
}

// clusterReport renders the artifact as the experiment report.
func clusterReport(a *ClusterArtifact) *Report {
	rep := &Report{
		ID:       "cluster",
		Title:    "Distributed sharded serving: recall parity and shard-loss behavior",
		Artifact: a,
	}
	t := metrics.NewTable(
		fmt.Sprintf("Scatter-gather router over live shards (%s, N=%d, k=%d, %d closed-loop clients)",
			dataset.SIFT1B.Name, a.BaseN, a.K, clusterClients),
		"shards", "queries", "errors", "recall", "QPS", "p50", "p95", "p99")
	for _, p := range a.Points {
		t.AddRow(
			fmt.Sprintf("%d", p.Shards),
			fmt.Sprintf("%d", p.Queries),
			fmt.Sprintf("%d", p.Errors),
			fmt.Sprintf("%.4f", p.Recall),
			metrics.F(p.QPS),
			metrics.Seconds(p.P50),
			metrics.Seconds(p.P95),
			metrics.Seconds(p.P99))
	}
	rep.Tables = append(rep.Tables, t)

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("single-host recall %.4f; %d-shard scatter-gather recall %.4f (parity bound: within 0.01)",
			a.RecallSingle, a.Points[len(a.Points)-1].Shards, a.Points[len(a.Points)-1].Recall),
		fmt.Sprintf("kill drill: recall %.4f -> %.4f with %.0f%% of the corpus lost, %d errors, %d degraded fanouts",
			a.KillPreRecall, a.KillPostRecall, 100*a.KillLostFrac, a.KillErrors, a.KillDegraded),
		"expected shape: scatter-gather within 1% of single-host recall; a killed shard degrades recall by about its corpus fraction and never surfaces a client error")
	for _, v := range a.Violations() {
		rep.Notes = append(rep.Notes, "VIOLATION: "+v)
	}
	return rep
}
