package bench

import "testing"

// TestKernelsExperiment checks the kernelbench harness structurally:
// measurements exist, results are bit-identical between the fast and
// reference paths, and every bandwidth is nonzero. The speedup gates
// themselves (2x u16 floor, baseline ratios) run in the CI bench-smoke
// job via Violations, where a dedicated machine-noise margin applies;
// asserting them under `go test` on an arbitrarily loaded host would
// make the unit suite flaky for no extra coverage.
func TestKernelsExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel bandwidth measurement under -short")
	}
	if raceEnabled {
		// The experiment is all timed loops over memory-resident slabs;
		// race instrumentation slows them 10x+ without adding coverage
		// (the bit-equality checks it would run are already pinned by the
		// golden and fuzz suites in internal/pq and internal/ivfpq).
		t.Skip("kernel bandwidth measurement under the race detector")
	}
	ctx := NewContext(tinyOptions())
	rep, err := ctx.Kernels()
	if err != nil {
		t.Fatal(err)
	}
	art, ok := rep.Artifact.(*KernelsArtifact)
	if !ok {
		t.Fatalf("kernels artifact has type %T", rep.Artifact)
	}
	if art.Mismatches != 0 {
		t.Fatalf("%d fast/reference mismatches", art.Mismatches)
	}
	if len(art.Points) != 3 {
		t.Fatalf("%d kernel points, want 3", len(art.Points))
	}
	for _, p := range art.Points {
		if p.RefGBps <= 0 || p.FastGBps <= 0 {
			t.Errorf("%s: nonpositive bandwidth %+v", p.Name, p)
		}
	}
	if art.LUTEntriesPerSec <= 0 {
		t.Error("LUT construction throughput is zero")
	}
	if art.SearchQPSFast <= 0 || art.SearchQPSRef <= 0 {
		t.Error("end-to-end search throughput is zero")
	}
	if art.RooflineGBps <= 0 {
		t.Error("roofline bound missing")
	}
	if len(rep.Tables) != 2 {
		t.Errorf("%d tables, want 2", len(rep.Tables))
	}
}
