package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first output")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("bucket %d count %d deviates >20%% from uniform", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestPermProperty(t *testing.T) {
	r := New(17)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(19)
	z := NewZipf(1000, 1.0)
	counts := make([]int, 1000)
	n := 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	// Rank 0 should dominate rank 100 by roughly 100x under s=1.
	if counts[0] < 20*counts[100] {
		t.Errorf("insufficient skew: counts[0]=%d counts[100]=%d", counts[0], counts[100])
	}
	// Empirical frequency of rank 0 should match its probability within 15%.
	want := z.Prob(0)
	got := float64(counts[0]) / float64(n)
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("rank-0 freq %v, want ~%v", got, want)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(23)
	z := NewZipf(10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(r)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("s=0 bucket %d count %d not ~uniform", i, c)
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(500, 1.2)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestZipfSampleInRange(t *testing.T) {
	r := New(29)
	z := NewZipf(7, 2.0)
	for i := 0; i < 10000; i++ {
		if v := z.Sample(r); v < 0 || v >= 7 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(31)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]int(nil), s...)
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	sum := 0
	for _, v := range s {
		sum += v
	}
	if sum != 45 {
		t.Fatalf("shuffle lost elements: %v (from %v)", s, orig)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkZipfSample(b *testing.B) {
	r := New(1)
	z := NewZipf(4096, 1.0)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = z.Sample(r)
	}
	_ = sink
}
