// Package xrand provides deterministic, seedable pseudo-random number
// generation used throughout the repository. Every experiment in the paper
// reproduction must be replayable bit-for-bit, so all randomness flows
// through this package rather than math/rand's global state.
//
// The core generator is xoshiro256**, seeded via splitmix64 as recommended
// by its authors. The package also provides the derived distributions the
// benchmarks need: uniform floats, Gaussians (for synthetic dataset
// generation) and a bounded Zipf sampler (for skewed cluster access
// frequencies, Fig. 4 of the paper).
package xrand

import "math"

// RNG is a xoshiro256** pseudo-random generator. The zero value is not
// usable; construct with New.
type RNG struct {
	s [4]uint64
	// cached spare Gaussian from the Box-Muller pair.
	spare    float64
	hasSpare bool
}

// splitmix64 advances the seed and returns the next splitmix64 output.
// It is used only to expand a single user seed into the xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically derived from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	for i := range r.s {
		r.s[i] = splitmix64(&seed)
	}
	// Guard against the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split returns a new generator whose stream is statistically independent
// of r's. It is used to hand child RNGs to parallel workers without
// sharing mutable state.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa3ec647659359acd)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits to avoid modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v <= max {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using
// the Box-Muller transform with caching of the second variate.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples from a bounded Zipf distribution over {0, ..., n-1} with
// exponent s > 0 (larger s = more skew). Sampling is done by inverse CDF
// over precomputed cumulative weights, O(log n) per draw.
type Zipf struct {
	cum []float64 // cumulative normalized weights, cum[n-1] == 1
}

// NewZipf builds a Zipf sampler over n ranks with exponent s.
// Rank 0 is the most popular. It panics if n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with n <= 0")
	}
	if s < 0 {
		panic("xrand: NewZipf with s < 0")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	inv := 1 / total
	for i := range cum {
		cum[i] *= inv
	}
	cum[n-1] = 1 // guard against rounding
	return &Zipf{cum: cum}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Sample draws one rank in [0, N).
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	// Binary search for the first cum[i] >= u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}
