#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve.

Scans every tracked .md file for [text](target) links and fails if a
relative target (after stripping any #anchor) does not exist on disk.
External links (http/https/mailto) and pure anchors are ignored. The CI
docs job runs this so documentation cannot silently point at files that
were moved or renamed.
"""

import os
import re
import subprocess
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def tracked_markdown():
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        capture_output=True, text=True, check=True,
    ).stdout
    return sorted(set(filter(None, out.splitlines())))


def check(path):
    errors = []
    with open(path, encoding="utf-8") as fh:
        in_fence = False
        for lineno, line in enumerate(fh, 1):
            # Links inside fenced code blocks are shell/code, not docs.
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK.findall(line):
                if target.startswith(SKIP_PREFIXES):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                resolved = os.path.normpath(os.path.join(os.path.dirname(path), rel))
                if not os.path.exists(resolved):
                    errors.append(f"{path}:{lineno}: broken link -> {target}")
    return errors


def main():
    files = tracked_markdown()
    if not files:
        print("no markdown files tracked?", file=sys.stderr)
        return 1
    errors = []
    for f in files:
        errors.extend(check(f))
    if errors:
        print("broken intra-repo markdown links:", file=sys.stderr)
        for e in errors:
            print("  " + e, file=sys.stderr)
        return 1
    print(f"markdown links OK ({len(files)} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
