#!/usr/bin/env python3
"""Cross-check /metrics series against the OPERATIONS.md reference.

Code side: every `upanns_*` series name registered through a PromWriter
call (Counter/Gauge/Summary) in non-test Go source. Docs side: every
`upanns_*` token in OPERATIONS.md outside fenced code blocks. The check
fails in both directions — a series the docs never mention, or a doc
token no code registers — so the metrics reference cannot rot as series
are added or renamed. The CI docs job runs this alongside the link
checker.

Doc tokens ending in `_` (e.g. `upanns_router_*` written as a family
wildcard) are prose shorthand, not series names, and are ignored.
"""

import re
import subprocess
import sys

REGISTER = re.compile(r'(?:Counter|Gauge|Summary)\(\s*"(upanns_[a-z0-9_]+)"')
DOC_TOKEN = re.compile(r"upanns_[a-z0-9_]+")
DOCS = "OPERATIONS.md"


def go_sources():
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others", "--exclude-standard",
         "*.go", "**/*.go"],
        capture_output=True, text=True, check=True,
    ).stdout
    return sorted(
        f for f in set(filter(None, out.splitlines()))
        if not f.endswith("_test.go")
    )


def code_metrics():
    names = set()
    for path in go_sources():
        with open(path, encoding="utf-8") as fh:
            names.update(REGISTER.findall(fh.read()))
    return names


def doc_metrics():
    names = set()
    with open(DOCS, encoding="utf-8") as fh:
        in_fence = False
        for line in fh:
            # Fenced blocks hold shell recipes (grep patterns, partial
            # names) — only prose and tables document series.
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for tok in DOC_TOKEN.findall(line):
                if not tok.endswith("_"):
                    names.add(tok)
    return names


def main():
    code = code_metrics()
    docs = doc_metrics()
    if not code:
        print("no upanns_ metrics found in Go sources?", file=sys.stderr)
        return 1
    errors = []
    for name in sorted(code - docs):
        errors.append(f"registered in code but absent from {DOCS}: {name}")
    for name in sorted(docs - code):
        errors.append(f"documented in {DOCS} but registered nowhere: {name}")
    if errors:
        print("metrics reference out of sync:", file=sys.stderr)
        for e in errors:
            print("  " + e, file=sys.stderr)
        return 1
    print(f"metrics reference OK ({len(code)} series cross-checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
