// Recommendation serving: the paper's second motivating workload. Item
// embeddings are SPACEV-like (100-dim), and user traffic is heavily
// skewed — popular item neighborhoods receive orders of magnitude more
// queries (Fig. 4). The example shows why Opt 1 (PIM-aware workload
// distribution) matters: with random placement hot DPUs stall the batch,
// with Algorithm 1+2 the load ratio drops toward 1 and the batch gets
// faster, at identical results.
//
//	go run ./examples/recommend
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ivfpq"
	"repro/internal/pim"
	"repro/internal/workload"
)

func main() {
	const (
		items  = 40000
		users  = 256
		nprobe = 8
		topK   = 10
	)
	spec := dataset.SPACEV1B // the most skewed of the three paper datasets
	fmt.Printf("recommendation catalog: %d item embeddings (%s, dim %d)\n", items, spec.Name, spec.Dim)

	catalog := dataset.Generate(spec, items, 7)
	ix := ivfpq.Train(catalog.Vectors, ivfpq.Params{NList: 64, M: spec.M, Seed: 3, TrainSub: 8192})
	ix.Add(catalog.Vectors, 0)

	// Historical traffic sample drives placement; live traffic is a fresh
	// draw from the same skewed distribution.
	history := catalog.Queries(1024, 100)
	live := catalog.Queries(users, 200)
	freqs := workload.ClusterFrequencies(ix.Coarse, history, nprobe)
	fmt.Printf("cluster access skew (max/median): %.0fx\n\n", workload.AccessSkew(freqs))

	newSys := func() *pim.System {
		s := pim.DefaultSpec()
		s.NumDIMMs = 1
		s.DPUsPerDIMM = 32
		return pim.NewSystem(s)
	}

	run := func(label string, usePlacement bool) *core.BatchResult {
		cfg := core.DefaultConfig()
		cfg.NProbe = nprobe
		cfg.K = topK
		cfg.UsePlacement = usePlacement
		engine, err := core.Build(ix, newSys(), freqs, cfg)
		if err != nil {
			log.Fatal(err)
		}
		br, err := engine.SearchBatch(live)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s batch %.2fms  QPS %-7.0f  DPU load max/avg %.2f\n",
			label, 1000*br.Timing.Total(), br.QPS, br.Balance)
		return br
	}

	smart := run("PIM-aware placement:", true)
	naive := run("random placement:", false)

	// Same recommendations either way — placement is performance-only.
	same := true
	for qi := range smart.Results {
		if len(smart.Results[qi]) != len(naive.Results[qi]) {
			same = false
			break
		}
		for i := range smart.Results[qi] {
			if smart.Results[qi][i].Dist != naive.Results[qi][i].Dist {
				same = false
				break
			}
		}
	}
	fmt.Printf("\nidentical recommendation distances under both placements: %v\n", same)
	fmt.Printf("hot-cluster replication cut the straggler DPU's excess load by %.1f%%\n",
		100*(1-(smart.Balance-1)/(naive.Balance-1)))

	fmt.Println("\nrecommendations for user 0:")
	for rank, c := range smart.Results[0] {
		fmt.Printf("  #%d item %d (distance %.3f)\n", rank+1, c.ID, c.Dist)
	}
}
