// Filtered-search walkthrough: attribute-constrained queries through the
// whole distributed stack — an HTTP client speaking to a scatter-gather
// router, fanning out to three live shards whose mutable indexes answer
// through their selectivity-adaptive filter executors, all in one
// process. Every vector carries typed tags (tenant int, lang string);
// queries constrain results with predicate expressions on the wire
// ({"vector": [...], "filter": "tenant = 3"}).
//
// Four phases demonstrate the subsystem end to end:
//
//  1. constrained correctness — every candidate a filtered query returns
//     satisfies its predicate, across equality, IN, and AND shapes;
//
//  2. filtered recall — recall@k against exact filtered ground truth
//     (brute force over only the matching vectors) stays within a small
//     margin of unfiltered recall at ~12% selectivity;
//
//  3. freshness through the overlay — an upsert with tags through the
//     router is immediately visible to exactly the filters its tags
//     satisfy, and its delete removes it (tags die with it);
//
//  4. observability — the router's merged /stats reports the cluster-wide
//     pre/post planning decisions and the selectivity histogram.
//
// The demo exits non-zero if any acceptance shape breaks, so CI runs it
// as a smoke test:
//
//	go run ./examples/filtered            # full size
//	go run ./examples/filtered -n 8000 -queries 40   # CI scale
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/filter"
	"repro/internal/topk"
	"repro/internal/vecmath"
)

// tenants is the tenant-field cardinality: tenant = T selects ~1/8 of
// the corpus (12.5% — above the 10% bound the recall check targets).
const tenants = 8

func tenantOf(id int64) int64 { return id % tenants }

func langOf(id int64) string {
	if id%3 == 0 {
		return "en"
	}
	return "fr"
}

func attrsOf(id int64) filter.Attrs {
	return filter.Attrs{
		"tenant": filter.IntValue(tenantOf(id)),
		"lang":   filter.StrValue(langOf(id)),
	}
}

// matches mirrors the server-side predicate semantics for the demo's
// client-side verification.
func matches(id int64, pred filter.Pred) bool {
	return filter.Matches(pred, attrsOf(id))
}

func main() {
	var (
		n       = flag.Int("n", 24000, "base vectors")
		queries = flag.Int("queries", 100, "queries per phase")
		shards  = flag.Int("shards", 3, "shard count")
		nlist   = flag.Int("ivf", 32, "IVF clusters per shard")
		nprobe  = flag.Int("nprobe", 8, "clusters probed per query")
		k       = flag.Int("k", 10, "neighbors per query")
		dpus    = flag.Int("dpus", 16, "simulated DPUs per shard")
		seed    = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	fmt.Printf("filtered demo: %d SIFT-like vectors, %d shards, %d queries, k=%d, %d tenants\n",
		*n, *shards, *queries, *k, tenants)
	ds := dataset.Generate(dataset.SIFT1B, *n, *seed)
	qs := ds.Queries(*queries, *seed+7)
	truth := dataset.GroundTruth(ds.Vectors, qs, *k)

	schema, err := filter.NewSchema(
		filter.Field{Name: "tenant", Type: filter.TInt},
		filter.Field{Name: "lang", Type: filter.TString},
	)
	if err != nil {
		log.Fatal(err)
	}

	// ---- Boot tagged shards, the router, and the router's HTTP front ----
	fmt.Printf("booting %d shards (hash-partitioned, tagged, mutable)...\n", *shards)
	fleet, err := cluster.StartLocalShards(ds.Vectors, cluster.LocalOptions{
		Shards: *shards, NList: *nlist, NProbe: *nprobe, K: *k, DPUs: *dpus, Seed: *seed,
		Schema: schema, AttrsFor: attrsOf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, s := range fleet {
			s.Close()
		}
	}()
	router, err := cluster.New(cluster.ShardURLs(fleet), cluster.Config{
		K:               *k,
		SearchTimeout:   30 * time.Second,
		HealthInterval:  100 * time.Millisecond,
		HealthTimeout:   5 * time.Second,
		BreakerCooldown: 500 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: cluster.NewHandler(router)}
	go hs.Serve(ln) //nolint:errcheck // torn down with the process
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("router HTTP front at %s\n", base)

	// ---- Phase 1: constrained correctness over the wire ----
	fmt.Println("\nphase 1: every filtered result satisfies its predicate")
	exprs := []string{
		`tenant = 3`,
		`lang = "en"`,
		`tenant IN (1, 2) AND lang = "fr"`,
	}
	for _, expr := range exprs {
		pred, err := filter.Parse(expr)
		if err != nil {
			log.Fatal(err)
		}
		checked, returned := 0, 0
		for qi := 0; qi < qs.Rows; qi++ {
			cands := searchHTTP(base, qs.Row(qi), 0, expr)
			returned += len(cands)
			for _, c := range cands {
				checked++
				if !matches(c.ID, pred) {
					log.Fatalf("phase 1: %q returned id %d with attrs %v", expr, c.ID, attrsOf(c.ID))
				}
			}
		}
		if returned == 0 {
			log.Fatalf("phase 1: %q returned nothing across %d queries", expr, qs.Rows)
		}
		fmt.Printf("  %-36q -> %d candidates over %d queries, all matching\n", expr, checked, qs.Rows)
	}

	// ---- Phase 2: filtered recall vs exact filtered ground truth ----
	fmt.Println("\nphase 2: filtered recall at ~12% selectivity")
	unfilteredResults := make([][]topk.Candidate, qs.Rows)
	for qi := 0; qi < qs.Rows; qi++ {
		unfilteredResults[qi] = searchHTTP(base, qs.Row(qi), 0, "")
	}
	recallPlain := dataset.Recall(unfilteredResults, truth)

	const filterExpr = `tenant = 3`
	pred3, err := filter.Parse(filterExpr)
	if err != nil {
		log.Fatal(err)
	}
	filteredTruth := filteredGroundTruth(ds.Vectors, qs, *k, pred3)
	filteredResults := make([][]topk.Candidate, qs.Rows)
	for qi := 0; qi < qs.Rows; qi++ {
		filteredResults[qi] = searchHTTP(base, qs.Row(qi), 0, filterExpr)
	}
	recallFiltered := dataset.Recall(filteredResults, filteredTruth)
	fmt.Printf("  unfiltered recall@%d %.4f, filtered recall@%d %.4f (delta %+.4f)\n",
		*k, recallPlain, *k, recallFiltered, recallFiltered-recallPlain)
	// 2% is the subsystem's recall bound at >= 10% selectivity; 1% more
	// absorbs the shard partition (recall parity bound of the cluster
	// tier).
	if recallFiltered < recallPlain-0.03 {
		log.Fatalf("phase 2: filtered recall %.4f more than 3%% below unfiltered %.4f",
			recallFiltered, recallPlain)
	}

	// ---- Phase 3: freshness through the overlay ----
	fmt.Println("\nphase 3: tagged upsert through the router is filter-visible immediately")
	probe := qs.Row(0)
	freshID := int64(*n + 100)
	writeHTTP(base, "/upsert", serveWrite{ID: freshID, Vector: probe, Attrs: map[string]any{
		"tenant": 99, "lang": "xx",
	}})
	cands := searchHTTP(base, probe, 0, `tenant = 99`)
	if len(cands) != 1 || cands[0].ID != freshID {
		log.Fatalf("phase 3: fresh upsert not visible through its filter: %+v", cands)
	}
	if leaked := searchHTTP(base, probe, 0, `tenant = 99 AND lang = "en"`); len(leaked) != 0 {
		log.Fatalf("phase 3: upsert leaked through a non-matching filter: %+v", leaked)
	}
	writeHTTP(base, "/delete", serveWrite{ID: freshID})
	if ghost := searchHTTP(base, probe, 0, `tenant = 99`); len(ghost) != 0 {
		log.Fatalf("phase 3: deleted vector still filter-visible: %+v", ghost)
	}
	fmt.Println("  upsert visible under tenant=99 only; delete removed it (tags died with it)")

	// ---- Phase 4: merged filter observability ----
	fmt.Println("\nphase 4: cluster-wide filter stats on the router's /stats")
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var agg cluster.AggregatedStats
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if agg.Filter == nil || agg.Filter.Filtered == 0 {
		log.Fatalf("phase 4: merged /stats carries no filter section: %+v", agg.Filter)
	}
	if agg.Filter.PreDecisions == 0 && agg.Filter.PostDecisions == 0 {
		log.Fatal("phase 4: no planning decisions recorded")
	}
	hist := uint64(0)
	for _, c := range agg.Filter.SelectivityHist {
		hist += c
	}
	if hist != agg.Filter.Filtered {
		log.Fatalf("phase 4: selectivity histogram sums to %d, want %d", hist, agg.Filter.Filtered)
	}
	fmt.Printf("  %d filtered queries cluster-wide: %d pre / %d post, selectivity histogram %v (bounds %v)\n",
		agg.Filter.Filtered, agg.Filter.PreDecisions, agg.Filter.PostDecisions,
		agg.Filter.SelectivityHist, agg.Filter.SelectivityBounds)
	if agg.Router.Filtered == 0 {
		log.Fatal("phase 4: router counted no filtered fanouts")
	}

	fmt.Println("\nfiltered queries rode the whole stack: wire predicate -> router fanout -> per-shard adaptive executor -> owner-filtered merge.")
}

// serveWrite mirrors serve.WriteRequest with loosely-typed attrs (what a
// real JSON client would send).
type serveWrite struct {
	ID     int64          `json:"id"`
	Vector []float32      `json:"vector,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

type searchWire struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k,omitempty"`
	Filter string    `json:"filter,omitempty"`
}

type searchReply struct {
	IDs       []int64   `json:"ids"`
	Distances []float32 `json:"distances"`
}

// searchHTTP posts one /search to the router front and decodes the
// reply, failing the demo on any non-200.
func searchHTTP(base string, vec []float32, k int, filterExpr string) []topk.Candidate {
	raw, _ := json.Marshal(searchWire{Vector: vec, K: k, Filter: filterExpr})
	resp, err := http.Post(base+"/search", "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("search (filter %q) answered %d: %s", filterExpr, resp.StatusCode, body)
	}
	var sr searchReply
	if err := json.Unmarshal(body, &sr); err != nil {
		log.Fatal(err)
	}
	out := make([]topk.Candidate, len(sr.IDs))
	for i := range sr.IDs {
		out[i] = topk.Candidate{ID: sr.IDs[i], Dist: sr.Distances[i]}
	}
	return out
}

// writeHTTP posts one write to the router front.
func writeHTTP(base, path string, req serveWrite) {
	raw, _ := json.Marshal(req)
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s id %d answered %d: %s", path, req.ID, resp.StatusCode, body)
	}
}

// filteredGroundTruth brute-forces the k nearest matching vectors per
// query — the denominator filtered recall is judged against.
func filteredGroundTruth(base *vecmath.Matrix, qs *vecmath.Matrix, k int, pred filter.Pred) [][]topk.Candidate {
	var rows []int
	for i := 0; i < base.Rows; i++ {
		if matches(int64(i), pred) {
			rows = append(rows, i)
		}
	}
	sub := vecmath.NewMatrix(len(rows), base.Dim)
	for i, r := range rows {
		sub.SetRow(i, base.Row(r))
	}
	truth := dataset.GroundTruth(sub, qs, k)
	for qi := range truth {
		for i := range truth[qi] {
			truth[qi][i].ID = int64(rows[truth[qi][i].ID])
		}
	}
	return truth
}
