// Quickstart: build an UpANNS deployment over a synthetic dataset and run
// a query batch — the minimal end-to-end use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ivfpq"
	"repro/internal/pim"
	"repro/internal/workload"
)

func main() {
	// 1. Data: 20k SIFT-like vectors (128-dim) plus a skewed query batch.
	ds := dataset.Generate(dataset.SIFT1B, 20000, 42)
	queries := ds.Queries(100, 43)

	// 2. Index: IVFPQ with 32 clusters and 16-byte PQ codes, exactly the
	// structure Faiss would build.
	ix := ivfpq.Train(ds.Vectors, ivfpq.Params{NList: 32, M: 16, Seed: 1, TrainSub: 8192})
	ix.Add(ds.Vectors, 0)

	// 3. Hardware: a simulated UPMEM deployment (32 DPUs = a quarter DIMM).
	spec := pim.DefaultSpec()
	spec.NumDIMMs = 1
	spec.DPUsPerDIMM = 32
	sys := pim.NewSystem(spec)

	// 4. Deploy: all four UpANNS optimizations on, cluster heat estimated
	// from a historical query sample.
	cfg := core.DefaultConfig()
	cfg.NProbe = 8
	cfg.K = 10
	freqs := workload.ClusterFrequencies(ix.Coarse, ds.Queries(200, 7), cfg.NProbe)
	engine, err := core.Build(ix, sys, freqs, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Search.
	br, err := engine.SearchBatch(queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d for query 0:\n", cfg.K)
	for rank, c := range br.Results[0] {
		fmt.Printf("  %2d. vector %-6d distance %.4f\n", rank+1, c.ID, c.Dist)
	}
	fmt.Printf("\nbatch of %d queries: %.2fms modelled latency, %.0f QPS, DPU balance %.2f\n",
		queries.Rows, 1000*br.Timing.Total(), br.QPS, br.Balance)
	fmt.Printf("co-occurrence encoding shortened vectors by %.1f%% on average\n",
		100*engine.MeanReductionRate())
}
