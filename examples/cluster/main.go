// Distributed serving walkthrough: a scatter-gather router over three
// live shards, all in one process. The corpus is hash-partitioned across
// the shards by the same stable ID hash the router routes writes with;
// each shard is a full mutable UpANNS deployment (own trained index, own
// simulated PIM system) behind the real shard HTTP surface on a loopback
// listener. Six phases demonstrate the cluster mechanics end to end:
//
//  1. recall parity — queries fanned out to 3 shards and merged in the
//     float domain answer within 1% of a single-host deployment of the
//     same corpus;
//
//  2. write routing — upserts and deletes sent to the router land on
//     exactly the shard that owns each id, so every shard's mutable
//     overlay and compaction keep working untouched;
//
//  3. kill drill — one shard is killed mid-run; queries keep answering
//     with zero client-visible errors at degraded recall (the dead
//     shard's third of the corpus is gone, availability is not), the
//     dead shard's circuit breaker opens, and the health prober excludes
//     it;
//
//  4. observability — a query carrying a traceparent header comes back
//     with a distributed span tree (router fanout, grafted shard-side
//     dispatch stages), and /metrics on the router and a surviving shard
//     parses as Prometheus text with a nonzero achieved-scan-GB/s gauge;
//
//  5. health plane — the router's /slo rollup shows the kill drill
//     burning the integrity error budget, the killed shard restarts and
//     the prober re-admits it (a shard_rejoin flight event after the
//     shard_lost), the /debug/bundle postmortem artifact unpacks with
//     the whole story inside, and a shard's /debug/costly heat ring
//     attributes the drill's per-query bytes;
//
//  6. quality plane — every shard shadow-samples answered queries
//     against its exact oracle; through a second kill drill the fleet
//     /quality rollup drops the dead shard while the survivors' recall
//     estimates hold (the client-visible recall dip is lost capacity,
//     not a quality regression — the OPERATIONS.md triage distinction),
//     and on rejoin the dip clears and the rollup regains the shard.
//
// The demo exits non-zero if any acceptance shape breaks, so CI runs it
// as a smoke test:
//
//	go run ./examples/cluster            # full size
//	go run ./examples/cluster -n 6000 -queries 40   # CI scale
package main

import (
	"archive/tar"
	"compress/gzip"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ivfpq"
	"repro/internal/obs"
	"repro/internal/pim"
	"repro/internal/serve"
	"repro/internal/topk"
	"repro/internal/vecmath"
)

func main() {
	var (
		n       = flag.Int("n", 24000, "base vectors")
		queries = flag.Int("queries", 100, "queries per phase")
		shards  = flag.Int("shards", 3, "shard count")
		nlist   = flag.Int("ivf", 32, "IVF clusters (per shard and single-host)")
		nprobe  = flag.Int("nprobe", 8, "clusters probed per query")
		k       = flag.Int("k", 10, "neighbors per query")
		dpus    = flag.Int("dpus", 16, "simulated DPUs per shard")
		seed    = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	fmt.Printf("cluster demo: %d SIFT-like vectors, %d shards, %d queries, k=%d\n",
		*n, *shards, *queries, *k)
	ds := dataset.Generate(dataset.SIFT1B, *n, *seed)
	qs := ds.Queries(*queries, *seed+7)
	truth := dataset.GroundTruth(ds.Vectors, qs, *k)

	// ---- Single-host baseline ----
	single := buildSingleHost(ds.Vectors, *nlist, *nprobe, *k, *dpus, *seed)
	br, err := single.SearchBatch(qs)
	if err != nil {
		log.Fatal(err)
	}
	recallSingle := dataset.Recall(truncateAll(br.Results, *k), truth)
	fmt.Printf("single-host recall@%d: %.4f\n\n", *k, recallSingle)

	// ---- Boot the shard fleet and the router ----
	fmt.Printf("booting %d shards (hash-partitioned, mutable, HTTP on loopback)...\n", *shards)
	fleet, err := cluster.StartLocalShards(ds.Vectors, cluster.LocalOptions{
		Shards: *shards, NList: *nlist, NProbe: *nprobe, K: *k, DPUs: *dpus, Seed: *seed,
		Trace: true, Obs: true,
		// One in 8 answered queries is re-run against the exact oracle;
		// phase 6 reads the resulting /quality rollup through a kill drill.
		QualitySample: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, s := range fleet {
			s.Close()
		}
	}()
	for _, s := range fleet {
		fmt.Printf("  shard %s: %d vectors at %s\n", s.ID, len(s.OwnedIDs), s.URL)
	}
	// Generous probe/search budgets: on a loaded CI machine a tight
	// timeout would transiently exclude a healthy shard and make the
	// recall phases flaky.
	router, err := cluster.New(cluster.ShardURLs(fleet), cluster.Config{
		K:               *k,
		SearchTimeout:   30 * time.Second,
		HealthInterval:  100 * time.Millisecond,
		HealthTimeout:   5 * time.Second,
		BreakerCooldown: 500 * time.Millisecond,
		Tracer:          obs.NewTracer(obs.TracerConfig{}),
		// The integrity objective is what a kill drill burns: degraded
		// fanouts answer 200, so without it the drill would be invisible
		// to the SLO plane.
		SLO: obs.NewSLOTracker(obs.SLOConfig{Name: "router", IntegrityTarget: 0.99}),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()

	// ---- Phase 1: recall parity ----
	fmt.Println("\nphase 1: scatter-gather recall parity")
	routed, errs := cleanSearchAll(router, qs)
	if errs > 0 {
		log.Fatalf("phase 1: %d of %d routed queries failed", errs, *queries)
	}
	recallRouter := dataset.Recall(routed, truth)
	fmt.Printf("  router recall@%d: %.4f (single-host %.4f, delta %+.4f)\n",
		*k, recallRouter, recallSingle, recallRouter-recallSingle)
	if recallRouter < recallSingle-0.01 {
		log.Fatalf("phase 1: router recall %.4f more than 1%% below single-host %.4f",
			recallRouter, recallSingle)
	}

	// ---- Phase 2: write routing by ID hash ----
	fmt.Println("\nphase 2: writes route to the owning shard")
	const writes = 30
	fresh := dataset.Generate(dataset.SIFT1B, writes, *seed+101).Vectors
	for i := 0; i < writes; i++ {
		id := int64(*n + i)
		if err := router.Upsert(context.Background(), id, fresh.Row(i)); err != nil {
			log.Fatalf("phase 2: upsert %d: %v", id, err)
		}
	}
	perShard := writeCounts(router)
	fmt.Printf("  %d upserts landed as %v across shards (owner-hash routing)\n", writes, perShard)
	for i := 0; i < writes; i++ {
		if err := router.Delete(context.Background(), int64(*n+i)); err != nil {
			log.Fatalf("phase 2: delete %d: %v", *n+i, err)
		}
	}
	fmt.Println("  deletes routed back; corpus restored via tombstones")

	// ---- Phase 3: kill one shard mid-run ----
	fmt.Println("\nphase 3: kill drill — one shard dies mid-run")
	half := *queries / 2
	preKill, errs := cleanSearchAll(router, matrixHead(qs, half))
	if errs > 0 {
		log.Fatalf("phase 3: %d pre-kill queries failed", errs)
	}
	victim := fleet[len(fleet)-1]
	victim.Kill()
	fmt.Printf("  killed shard %s (%d vectors gone)\n", victim.ID, len(victim.OwnedIDs))
	postKill, errs := searchAll(router, qs)
	if errs > 0 {
		log.Fatalf("phase 3: %d of %d queries failed after the kill — degraded serving must not error", errs, *queries)
	}
	recallPre := dataset.Recall(preKill, truth[:half])
	recallPost := dataset.Recall(postKill, truth)
	fmt.Printf("  recall@%d: %.4f before kill -> %.4f after (no errors, %d/%d shards)\n",
		*k, recallPre, recallPost, router.HealthyShards(), router.NumShards())
	if recallPost >= recallPre {
		fmt.Println("  (note: degraded recall did not drop — tiny corpus, lucky partition)")
	}
	lost := float64(len(victim.OwnedIDs)) / float64(*n)
	if floor := recallPre * (1 - lost) * 0.8; recallPost < floor {
		log.Fatalf("phase 3: post-kill recall %.4f below plausibility floor %.4f", recallPost, floor)
	}

	// ---- Phase 4: observability — /metrics scrape + a distributed trace ----
	fmt.Println("\nphase 4: observability — /metrics scrape and a distributed trace")
	front := httptest.NewServer(cluster.NewHandler(router))
	defer front.Close()
	req, err := http.NewRequest(http.MethodPost, front.URL+"/search",
		strings.NewReader(fmt.Sprintf(`{"vector": %s}`, vectorJSON(qs.Row(0)))))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, "00-000000000000000000000000000c1e47-0000000000000001-01")
	resp, err := front.Client().Do(req)
	if err != nil {
		log.Fatalf("phase 4: traced search: %v", err)
	}
	var traced serve.SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&traced); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if traced.Trace == nil {
		log.Fatal("phase 4: traced fanout carried no span-tree annotation")
	}
	shardSpans := countSpans(traced.Trace, "shard.request")
	dispatchSpans := countSpans(traced.Trace, "serve.dispatch")
	fmt.Printf("  distributed trace: root %s, %d shard spans, %d grafted dispatch spans\n",
		traced.Trace.Name, shardSpans, dispatchSpans)
	if shardSpans < 1 || dispatchSpans < 1 {
		log.Fatal("phase 4: trace is missing shard-side spans (graft broken)")
	}

	routerMetrics := scrapeMetrics(front.URL + "/metrics")
	fmt.Printf("  router /metrics: %d samples, %d searches\n",
		len(routerMetrics), int(routerMetrics["upanns_router_searches_total"]))
	if routerMetrics["upanns_router_searches_total"] <= 0 {
		log.Fatal("phase 4: router metrics report no searches")
	}
	shardMetrics := scrapeMetrics(fleet[0].URL + "/metrics")
	gbps := shardMetrics["upanns_kernel_scan_gbps"]
	roof := shardMetrics["upanns_kernel_roofline_gbps"]
	fmt.Printf("  shard s0 /metrics: %d samples, ADC scan %.2f GB/s achieved (roofline %.2f GB/s)\n",
		len(shardMetrics), gbps, roof)
	if gbps <= 0 || roof <= 0 {
		log.Fatalf("phase 4: kernel bandwidth gauges achieved=%.3f roofline=%.3f, want both > 0", gbps, roof)
	}

	// ---- Phase 5: health plane — /slo burn, shard rejoin, postmortem bundle ----
	fmt.Println("\nphase 5: health plane — /slo burn rate, shard rejoin, postmortem bundle")
	var fleetSLO cluster.FleetSLO
	fetchJSON(front.URL+"/slo", &fleetSLO)
	integ := findObjective(fleetSLO.Router, "integrity")
	fmt.Printf("  fleet /slo: state %q, router integrity burn fast %.1f / slow %.1f, %d shard snapshots\n",
		fleetSLO.State, integ.FastBurn, integ.SlowBurn, len(fleetSLO.Shards))
	if fleetSLO.State == "ok" || integ.FastBurn <= 0 {
		log.Fatal("phase 5: the kill drill burned no visible SLO budget")
	}
	if len(fleetSLO.Shards) == 0 {
		log.Fatal("phase 5: fleet rollup gathered no shard snapshots")
	}

	if err := victim.Restart(); err != nil {
		log.Fatalf("phase 5: restarting shard %s: %v", victim.ID, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for router.HealthyShards() < router.NumShards() {
		if time.Now().After(deadline) {
			log.Fatalf("phase 5: shard %s not re-admitted within 10s of restarting", victim.ID)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("  shard %s restarted and re-admitted (%d/%d healthy)\n",
		victim.ID, router.HealthyShards(), router.NumShards())

	files := fetchBundle(front.URL + "/debug/bundle")
	for _, name := range []string{"flight.json", "metrics.txt", "slo.json", "stats.json", "traces.json"} {
		if _, ok := files[name]; !ok {
			log.Fatalf("phase 5: postmortem bundle is missing %s", name)
		}
	}
	var events []obs.FlightEvent
	if err := json.Unmarshal(files["flight.json"], &events); err != nil {
		log.Fatalf("phase 5: bundle flight.json: %v", err)
	}
	var lostSeq, rejoinSeq uint64
	for _, ev := range events {
		if ev.Attrs["url"] != victim.URL {
			continue
		}
		switch ev.Kind {
		case "shard_lost":
			lostSeq = ev.Seq
		case "shard_rejoin":
			if ev.Seq > rejoinSeq {
				rejoinSeq = ev.Seq
			}
		}
	}
	fmt.Printf("  postmortem bundle: %d sections, %d flight events (shard_lost seq %d -> shard_rejoin seq %d)\n",
		len(files), len(events), lostSeq, rejoinSeq)
	if lostSeq == 0 || rejoinSeq <= lostSeq {
		log.Fatal("phase 5: flight record does not tell the kill/rejoin story")
	}

	var costly obs.CostlyPayload
	fetchJSON(fleet[0].URL+"/debug/costly", &costly)
	if costly.Queries == 0 || costly.TotalBytes == 0 || len(costly.Top) == 0 {
		log.Fatalf("phase 5: shard s0 cost ring is empty (%d queries, %d bytes)", costly.Queries, costly.TotalBytes)
	}
	fmt.Printf("  shard s0 /debug/costly: %d queries, %.1f MB moved, hottest query %.1f KB\n",
		costly.Queries, float64(costly.TotalBytes)/1e6, float64(costly.Top[0].TotalBytes)/1e3)

	// ---- Phase 6: quality plane — shadow-oracle /quality through a kill drill ----
	fmt.Println("\nphase 6: quality plane — shadow-oracle recall estimates through a second kill drill")
	drainShadows := func() {
		for _, s := range fleet {
			if !s.Quality.Drain(30 * time.Second) {
				log.Fatalf("phase 6: shard %s shadow queue did not drain", s.ID)
			}
		}
	}
	fleetQuality := func() cluster.FleetQuality {
		var fq cluster.FleetQuality
		fetchJSON(front.URL+"/quality", &fq)
		return fq
	}

	// Healthy fleet: every shard samples, estimates within their CIs.
	preQ, errs := cleanSearchAll(router, qs)
	if errs > 0 {
		log.Fatalf("phase 6: %d pre-drill queries failed", errs)
	}
	recallQPre := dataset.Recall(preQ, truth)
	drainShadows()
	fq := fleetQuality()
	var sampled uint64
	minEst := 1.0
	for _, snap := range fq.Shards {
		sampled += snap.Sampled
		if snap.Recall.Estimate < minEst {
			minEst = snap.Recall.Estimate
		}
	}
	fmt.Printf("  fleet /quality: state %q, %d/%d shards sampling, %d shadow checks, min shard recall est %.4f\n",
		fq.State, len(fq.Shards), *shards, sampled, minEst)
	if len(fq.Shards) != *shards || fq.State == "disabled" || sampled == 0 {
		log.Fatal("phase 6: quality rollup missing shards or samples on a healthy fleet")
	}

	// Kill one shard again: routed recall dips, but the survivors' own
	// shadow-measured recall holds — /quality tells the on-call the dip
	// is lost capacity, not a per-shard quality regression.
	victim.Kill()
	deadline = time.Now().Add(10 * time.Second)
	for router.HealthyShards() == router.NumShards() {
		if time.Now().After(deadline) {
			log.Fatalf("phase 6: prober did not notice shard %s dying", victim.ID)
		}
		time.Sleep(50 * time.Millisecond)
	}
	during, errs := searchAll(router, qs)
	if errs > 0 {
		log.Fatalf("phase 6: %d queries failed during the drill", errs)
	}
	recallDuring := dataset.Recall(during, truth)
	drainShadows()
	fqDuring := fleetQuality()
	fmt.Printf("  during drill: routed recall %.4f -> %.4f, /quality rollup %d/%d shards\n",
		recallQPre, recallDuring, len(fqDuring.Shards), *shards)
	if len(fqDuring.Shards) != *shards-1 {
		log.Fatalf("phase 6: dead shard still in (or survivor missing from) the quality rollup: %d shards", len(fqDuring.Shards))
	}
	for idx, snap := range fqDuring.Shards {
		if snap.Recall.Estimate < 0.5 {
			log.Fatalf("phase 6: surviving shard %s recall estimate collapsed to %.4f", idx, snap.Recall.Estimate)
		}
	}
	if recallDuring >= recallQPre {
		fmt.Println("  (note: degraded recall did not dip — tiny corpus, lucky partition)")
	}

	// Rejoin: the dip clears and the rollup regains the shard.
	if err := victim.Restart(); err != nil {
		log.Fatalf("phase 6: restarting shard %s: %v", victim.ID, err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for router.HealthyShards() < router.NumShards() {
		if time.Now().After(deadline) {
			log.Fatalf("phase 6: shard %s not re-admitted within 10s", victim.ID)
		}
		time.Sleep(50 * time.Millisecond)
	}
	postQ, errs := cleanSearchAll(router, qs)
	if errs > 0 {
		log.Fatalf("phase 6: %d post-rejoin queries failed", errs)
	}
	recallQPost := dataset.Recall(postQ, truth)
	drainShadows()
	fqPost := fleetQuality()
	fmt.Printf("  after rejoin: routed recall %.4f (dip cleared), /quality rollup %d/%d shards\n",
		recallQPost, len(fqPost.Shards), *shards)
	if len(fqPost.Shards) != *shards {
		log.Fatalf("phase 6: rejoined shard absent from the quality rollup (%d shards)", len(fqPost.Shards))
	}
	if recallQPost < recallQPre-0.02 {
		log.Fatalf("phase 6: recall dip did not clear on rejoin (%.4f before, %.4f after)", recallQPre, recallQPost)
	}

	st := router.Stats()
	fmt.Printf("\nrouter stats: %d searches (%d degraded), %d stale drops, %d writes\n",
		st.Searches, st.Degraded, st.StaleDrops, st.Writes)
	for _, ss := range st.Shards {
		fmt.Printf("  shard %d (%s): healthy=%v breaker=%s requests=%d errors=%d hedges=%d p99=%.2fms\n",
			ss.Index, ss.ID, ss.Healthy, ss.Breaker, ss.Requests, ss.Errors, ss.Hedges, 1000*ss.Latency.P99)
	}
	if st.Degraded == 0 {
		log.Fatal("expected degraded fanouts after the kill")
	}
	fmt.Println("\nthe cluster kept serving through a shard loss: recall degraded, availability did not.")
}

// buildSingleHost deploys one engine over the whole corpus.
func buildSingleHost(base *vecmath.Matrix, nlist, nprobe, k, dpus int, seed uint64) *core.Engine {
	ix := ivfpq.Train(base, ivfpq.Params{NList: nlist, M: dataset.SIFT1B.M, Seed: seed, TrainSub: 8192})
	ix.Add(base, 0)
	spec := pim.DefaultSpec()
	spec.NumDIMMs = 1
	spec.DPUsPerDIMM = dpus
	cfg := core.DefaultConfig()
	cfg.NProbe = nprobe
	cfg.K = k
	cfg.Seed = seed
	eng, err := core.Build(ix, pim.NewSystem(spec), nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return eng
}

// cleanSearchAll is searchAll retried (up to 3 passes) until a pass has
// zero errors and zero new degraded fanouts: recall parity must be
// measured on fanouts that reached every shard, and ambient machine load
// can transiently degrade one without erroring.
func cleanSearchAll(r *cluster.Router, qs *vecmath.Matrix) ([][]topk.Candidate, int) {
	var out [][]topk.Candidate
	var errs int
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			// Let an opened breaker reach half-open and the prober re-admit
			// the shard before retrying.
			time.Sleep(700 * time.Millisecond)
		}
		before := r.Stats().Degraded
		out, errs = searchAll(r, qs)
		if errs == 0 && r.Stats().Degraded == before {
			break
		}
	}
	return out, errs
}

// searchAll routes every query row through the router, returning results
// and the error count (failed queries yield empty rows).
func searchAll(r *cluster.Router, qs *vecmath.Matrix) ([][]topk.Candidate, int) {
	out := make([][]topk.Candidate, qs.Rows)
	errs := 0
	for i := 0; i < qs.Rows; i++ {
		cands, err := r.Search(context.Background(), qs.Row(i))
		if err != nil {
			errs++
			continue
		}
		out[i] = cands
	}
	return out, errs
}

// writeCounts reads per-shard write counters from router stats.
func writeCounts(r *cluster.Router) []uint64 {
	st := r.Stats()
	out := make([]uint64, len(st.Shards))
	for i, s := range st.Shards {
		out[i] = s.Writes
	}
	return out
}

// countSpans counts spans named name in the wire tree.
func countSpans(sp *obs.WireSpan, name string) int {
	if sp == nil {
		return 0
	}
	n := 0
	if sp.Name == name {
		n++
	}
	for _, c := range sp.Children {
		n += countSpans(c, name)
	}
	return n
}

// scrapeMetrics GETs a Prometheus text endpoint and parses it into a
// sample map (labels kept in the key), failing the demo on any malformed
// line — CI runs this as the exposition-format smoke test.
func scrapeMetrics(url string) map[string]float64 {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("scraping %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("scraping %s: HTTP %d", url, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("scraping %s: %v", url, err)
	}
	samples := map[string]float64{}
	for ln, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			log.Fatalf("%s line %d: no value: %q", url, ln+1, line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			log.Fatalf("%s line %d: bad value %q: %v", url, ln+1, line[i+1:], err)
		}
		samples[line[:i]] = v
	}
	if len(samples) == 0 {
		log.Fatalf("%s served no samples", url)
	}
	return samples
}

// fetchJSON GETs a JSON endpoint into v, failing the demo on any error.
func fetchJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("fetching %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("fetching %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatalf("decoding %s: %v", url, err)
	}
}

// fetchBundle GETs a /debug/bundle artifact and unpacks the gzipped tar
// in memory into section name -> body.
func fetchBundle(url string) map[string][]byte {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("fetching %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("fetching %s: HTTP %d", url, resp.StatusCode)
	}
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		log.Fatalf("bundle gzip: %v", err)
	}
	files := map[string][]byte{}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("bundle tar: %v", err)
		}
		body, err := io.ReadAll(tr)
		if err != nil {
			log.Fatalf("bundle tar body: %v", err)
		}
		files[hdr.Name] = body
	}
	return files
}

// findObjective returns the named objective from a snapshot (zero value
// if absent — the caller's burn assertions then fail loudly).
func findObjective(s obs.SLOSnapshot, name string) obs.SLOObjective {
	for _, o := range s.Objectives {
		if o.Objective == name {
			return o
		}
	}
	return obs.SLOObjective{}
}

// vectorJSON renders a query row as a JSON array.
func vectorJSON(v []float32) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%g", x)
	}
	sb.WriteByte(']')
	return sb.String()
}

// matrixHead views the first n rows of m.
func matrixHead(m *vecmath.Matrix, n int) *vecmath.Matrix {
	if n > m.Rows {
		n = m.Rows
	}
	return vecmath.WrapMatrix(m.Data[:n*m.Dim], n, m.Dim)
}

// truncateAll trims each result list to k.
func truncateAll(res [][]topk.Candidate, k int) [][]topk.Candidate {
	for i, r := range res {
		if len(r) > k {
			res[i] = r[:k]
		}
	}
	return res
}
