// Scale study: reproduce the Fig. 20 methodology as a library user —
// measure QPS across DPU counts, fit the regression, and predict the QPS
// of larger deployments, including the point where the PIM rack draws the
// same power as one A100.
//
//	go run ./examples/scalestudy
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ivfpq"
	"repro/internal/metrics"
	"repro/internal/pim"
	"repro/internal/workload"
)

func main() {
	const (
		n      = 30000
		nq     = 100
		nprobe = 8
	)
	ds := dataset.Generate(dataset.SIFT1B, n, 5)
	ix := ivfpq.Train(ds.Vectors, ivfpq.Params{NList: 32, M: 16, Seed: 5, TrainSub: 8192})
	ix.Add(ds.Vectors, 0)
	queries := ds.Queries(nq, 6)
	freqs := workload.ClusterFrequencies(ix.Coarse, ds.Queries(512, 9), nprobe)

	var xs, ys []float64
	fmt.Printf("%-8s %-10s\n", "DPUs", "QPS")
	for _, dpus := range []int{8, 12, 16, 20, 24, 28, 32} {
		spec := pim.DefaultSpec()
		spec.NumDIMMs = 1
		spec.DPUsPerDIMM = dpus
		cfg := core.DefaultConfig()
		cfg.NProbe = nprobe
		engine, err := core.Build(ix, pim.NewSystem(spec), freqs, cfg)
		if err != nil {
			log.Fatal(err)
		}
		br, err := engine.SearchBatch(queries)
		if err != nil {
			log.Fatal(err)
		}
		xs = append(xs, float64(dpus))
		ys = append(ys, br.QPS)
		fmt.Printf("%-8d %-10.0f\n", dpus, br.QPS)
	}

	slope, intercept, r2 := metrics.LinReg(xs, ys)
	fmt.Printf("\nlinear fit: QPS = %.2f*DPUs %+.1f (r2 = %.4f)\n", slope, intercept, r2)

	// Power accounting: 23.22 W per 128-DPU DIMM (Table 1). The GPU
	// comparator is scaled to the top measured deployment's fraction of
	// the paper's 896 DPUs (32/896), preserving the published platform
	// ratio; the equal-power comparison point scales identically.
	const scale = 32.0 / 896.0
	wattsPerDPU := 23.22 / 128
	gb := baseline.NewGPU(ix)
	gb.Dev = gb.Dev.Scaled(scale)
	gpu, err := gb.SearchBatch(queries, nprobe, 10)
	if err != nil {
		log.Fatal(err)
	}
	gpuWatts := 300 * scale
	equalPowerDPUs := gpuWatts / wattsPerDPU
	predicted := slope*equalPowerDPUs + intercept
	fmt.Printf("Faiss-GPU (scaled to the same platform fraction): %.0f QPS at %.1f W\n", gpu.QPS, gpuWatts)
	fmt.Printf("predicted UpANNS at the equal-power point (%.0f DPUs, %.1f W): %.0f QPS (%.1fx GPU)\n",
		equalPowerDPUs, equalPowerDPUs*wattsPerDPU, predicted, predicted/gpu.QPS)
	fmt.Println("\nthe near-linear fit mirrors Fig. 20: DPUs add bandwidth and compute together,")
	fmt.Println("so QPS scales with the DIMM count until the host transfer path saturates.")
}
