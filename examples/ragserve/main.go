// RAG serving: the paper's motivating workload — a retrieval-augmented
// LLM fetching supporting passages per prompt. Passage embeddings are
// DEEP-like (96-dim, the dimensionality of learned text/image encoders),
// prompts arrive in bursts, and the serving budget is measured in both
// latency and energy. The example compares UpANNS against the Faiss-CPU
// comparator on the same index and prints per-burst retrieval latency,
// throughput, and QPS per watt.
//
//	go run ./examples/ragserve
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ivfpq"
	"repro/internal/pim"
	"repro/internal/workload"
)

func main() {
	const (
		passages  = 40000
		burstSize = 128
		bursts    = 3
		nprobe    = 8
		topK      = 5 // passages stuffed into the prompt context
	)
	fmt.Println("RAG passage retrieval: 96-dim embeddings,", passages, "passages")

	corpus := dataset.Generate(dataset.DEEP1B, passages, 2024)
	ix := ivfpq.Train(corpus.Vectors, ivfpq.Params{NList: 48, M: dataset.DEEP1B.M, Seed: 9, TrainSub: 8192})
	ix.Add(corpus.Vectors, 0)

	spec := pim.DefaultSpec()
	spec.NumDIMMs = 1
	spec.DPUsPerDIMM = 48
	sys := pim.NewSystem(spec)
	cfg := core.DefaultConfig()
	cfg.NProbe = nprobe
	cfg.K = topK
	freqs := workload.ClusterFrequencies(ix.Coarse, corpus.Queries(512, 77), nprobe)
	engine, err := core.Build(ix, sys, freqs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Scale the CPU comparator to the same fraction of its platform that
	// our 48 DPUs are of the paper's 896-DPU deployment, so the published
	// platform ratio is preserved at example size.
	cpu := baseline.NewCPU(ix)
	cpu.Dev = cpu.Dev.Scaled(48.0 / 896.0)

	pimWatts := spec.PeakWatts() * float64(spec.DPUsPerDIMM) / 128
	fmt.Printf("%-8s %-14s %-14s %-12s %-12s\n", "burst", "UpANNS lat", "CPU lat", "UpANNS QPS/W", "CPU QPS/W")
	for b := 0; b < bursts; b++ {
		prompts := corpus.Queries(burstSize, uint64(1000+b))
		up, err := engine.SearchBatch(prompts)
		if err != nil {
			log.Fatal(err)
		}
		cp, err := cpu.SearchBatch(prompts, nprobe, topK)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-14s %-14s %-12.1f %-12.1f\n", b,
			fmt.Sprintf("%.2fms", 1000*up.Timing.Total()),
			fmt.Sprintf("%.2fms", 1000*cp.Stages.Total()),
			up.QPS/pimWatts, cp.QPSW)

		// Assemble the context for the first prompt of the burst, as the
		// serving layer would.
		if b == 0 {
			fmt.Println("\ncontext passages for prompt 0:")
			for rank, c := range up.Results[0] {
				fmt.Printf("  #%d passage %d (similarity distance %.3f)\n", rank+1, c.ID, c.Dist)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nUpANNS serves RAG retrieval at GPU-class throughput inside a DIMM power envelope.")
}
