// Online serving walkthrough: fronting the UpANNS engine with the
// internal/serve layer and driving it with open-loop Zipfian traffic, the
// way a production ANNS tier meets users. Two phases demonstrate the
// serving mechanics end to end:
//
//  1. a sustainable Poisson arrival rate — micro-batching coalesces
//     concurrent requests, the LRU result cache absorbs the hot queries,
//     and the latency quantiles stay flat;
//
//  2. a deliberate overload (3x the measured capacity) with a short
//     queue and a request deadline — the server keeps running at its
//     capacity, sheds the excess at admission, and the stats show exactly
//     how much traffic was turned away and what the survivors paid.
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ivfpq"
	"repro/internal/pim"
	"repro/internal/serve"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

func main() {
	const (
		nVectors = 30000
		nDPUs    = 32
		nprobe   = 8
		topK     = 10
		poolSize = 256 // distinct queries in the traffic pool
		zipfSkew = 1.0 // hot-query popularity exponent
	)

	fmt.Printf("deploying UpANNS: %d SIFT-like vectors on %d simulated DPUs\n", nVectors, nDPUs)
	ds := dataset.Generate(dataset.SIFT1B, nVectors, 42)
	ix := ivfpq.Train(ds.Vectors, ivfpq.Params{NList: 64, M: dataset.SIFT1B.M, Seed: 7, TrainSub: 8192})
	ix.Add(ds.Vectors, 0)
	spec := pim.DefaultSpec()
	spec.NumDIMMs = 1
	spec.DPUsPerDIMM = nDPUs
	sys := pim.NewSystem(spec)
	cfg := core.DefaultConfig()
	cfg.NProbe = nprobe
	cfg.K = topK
	pool := ds.Queries(poolSize, 99)
	freqs := workload.ClusterFrequencies(ix.Coarse, pool, nprobe)
	engine, err := core.Build(ix, sys, freqs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	backend := serve.NewEngineBackend(engine)

	// Calibrate: one big batch measures the engine's batched wall-clock
	// capacity on this machine, so the open-loop rates below mean the same
	// thing everywhere.
	calN := 64
	calStart := time.Now()
	if _, err := engine.SearchBatch(vecmath.WrapMatrix(pool.Data[:calN*pool.Dim], calN, pool.Dim)); err != nil {
		log.Fatal(err)
	}
	capacity := float64(calN) / time.Since(calStart).Seconds()
	fmt.Printf("measured batched capacity: ~%.0f QPS\n\n", capacity)

	// ---- Phase 1: sustainable Zipfian load ----
	fmt.Println("phase 1: open-loop Poisson arrivals at 50% of capacity, Zipf query popularity")
	srv, err := serve.NewServer(serve.Config{
		K: topK, MaxBatch: 32, MaxLinger: 500 * time.Microsecond,
		QueueDepth: 1024, DefaultTimeout: 5 * time.Second, CacheSize: 128,
	}, backend)
	if err != nil {
		log.Fatal(err)
	}
	stream := workload.NewQueryStream(pool, zipfSkew, 5)
	fmt.Printf("  (best possible hit rate with a %d-entry cache on this stream: %.0f%%)\n",
		srv.Config().CacheSize, 100*stream.HitRateUpperBound(srv.Config().CacheSize))
	runOpenLoop(srv, pool, 0.5*capacity, 2*time.Second, zipfSkew)
	report(srv.Stats())
	srv.Close()

	// ---- Phase 2: overload with admission control ----
	fmt.Println("phase 2: 3x capacity, 250ms deadline, 16-deep queue — shedding instead of collapse")
	srv2, err := serve.NewServer(serve.Config{
		K: topK, MaxBatch: 32, MaxLinger: 500 * time.Microsecond,
		QueueDepth: 16, DefaultTimeout: 250 * time.Millisecond, CacheSize: 0,
	}, backend)
	if err != nil {
		log.Fatal(err)
	}
	runOpenLoop(srv2, pool, 3*capacity, 2*time.Second, zipfSkew)
	st := srv2.Stats()
	report(st)
	srv2.Close()

	turnedAway := float64(st.Shed+st.Expired) / float64(st.Requests)
	fmt.Printf("\nunder 3x overload the server stayed up, answered %d requests within deadline,\n"+
		"and turned away %.0f%% (shed %d at admission, %d missed deadlines) — bounded queues,\n"+
		"bounded latency, no collapse.\n", st.Completed+st.CacheHits, 100*turnedAway, st.Shed, st.Expired)
}

// runOpenLoop fires Poisson arrivals at the target rate for the given
// duration, drawing Zipf-popular queries from pool.
func runOpenLoop(srv *serve.Server, pool *vecmath.Matrix, rate float64, dur time.Duration, skew float64) {
	n := int(rate * dur.Seconds())
	arrivals := workload.PoissonArrivals(rate, n, 17)
	stream := workload.NewQueryStream(pool, skew, 23)
	// Draw the query sequence up front; the firing loop then only sleeps
	// and dispatches.
	queries := make([][]float32, n)
	for i := range queries {
		queries[i] = stream.Next()
	}
	done := make(chan struct{}, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		if wait := arrivals[i] - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		go func(q []float32) {
			srv.Search(context.Background(), q) // outcome lands in Stats
			done <- struct{}{}
		}(queries[i])
	}
	for i := 0; i < n; i++ {
		<-done
	}
	elapsed := time.Since(start)
	fmt.Printf("  offered %d requests over %s (target rate %.0f/s)\n", n, elapsed.Round(time.Millisecond), rate)
}

// report prints the serving counters and latency quantiles.
func report(st serve.Stats) {
	fmt.Printf("  served %d (cache hits %d, hit rate %.0f%%, coalesced %d, mean batch %.1f)\n",
		st.Completed+st.CacheHits, st.CacheHits, 100*st.HitRate(), st.Coalesced, st.MeanBatchSize)
	fmt.Printf("  shed %d, expired %d\n", st.Shed, st.Expired)
	l := st.Latency
	fmt.Printf("  latency: p50 %.2fms  p95 %.2fms  p99 %.2fms  (n=%d)\n\n",
		1000*l.P50, 1000*l.P95, 1000*l.P99, l.Count)
}
