// Package repro is a from-scratch Go reproduction of "UpANNS: Enhancing
// Billion-Scale ANNS Efficiency with Real-World PIM Architecture"
// (SC '25). The library lives under internal/: the UpANNS engine in
// internal/core, the UPMEM PIM simulator in internal/pim, the shared
// IVFPQ index in internal/ivfpq, and the roofline-modelled Faiss-CPU/GPU
// comparators in internal/baseline. The benchmark harness in
// internal/bench regenerates every table and figure of the paper's
// evaluation; the root-level benchmarks in bench_test.go expose one
// testing.B target per artifact.
//
// Beyond the offline reproduction, internal/serve provides an online
// query-serving layer — micro-batching, admission control, request
// coalescing, an LRU result cache, and a mirrored write batcher over the
// engine — and internal/mutable makes the deployment updatable under
// live traffic: online insert/delete staged in an LSM-style overlay,
// epoch-snapshot serving with RCU-style publication, and background
// compaction that re-places and redeploys the index when log, tombstone,
// or access-drift pressure crosses a threshold. Both are exposed as an
// HTTP service by cmd/upanns-serve (POST /search /upsert /delete) and
// measured by the harness' "serving" and "updates" experiments (QPS vs
// tail latency across batching policies; recall stability and read tail
// under churn).
//
// See README.md for a tour and DESIGN.md for the system inventory.
package repro
