// Package repro is a from-scratch Go reproduction of "UpANNS: Enhancing
// Billion-Scale ANNS Efficiency with Real-World PIM Architecture"
// (SC '25), grown into a production-shaped serving system. The library
// lives under internal/, layered bottom-up:
//
//   - substrate: internal/vecmath (float32 matrices and distance
//     kernels), internal/xrand (seeded RNG — every experiment replays
//     bit-for-bit), internal/dataset (synthetic SIFT/DEEP/SPACEV-like
//     generators, fvecs/bvecs/ivecs codecs, exact ground truth);
//
//   - index: internal/ivfpq with internal/kmeans, internal/pq and
//     internal/ivf (the shared IVFPQ index and its serialization),
//     internal/topk (bounded heaps and the pruned merge of Opt 4),
//     internal/hnsw (graph comparator);
//
//   - simulated hardware: internal/pim (the UPMEM system model — DPUs,
//     MRAM/WRAM, tasklets, cycle model, transfer rules) and
//     internal/archmodel (CPU/GPU roofline comparators);
//
//   - engine: internal/core (WRAM planning, MRAM cluster images, the DPU
//     kernel, batched search with modelled stage timing), with
//     internal/placement (Algorithms 1 and 2), internal/cooc (Opt 3),
//     internal/baseline (Faiss-CPU/GPU and PIM-naive comparators), and
//     internal/multihost (the paper's Section 5.5 in-process sketch);
//
//   - mutability: internal/mutable — online insert/delete staged in an
//     LSM-style overlay, epoch-snapshot serving with RCU-style
//     publication, background compaction re-placing and redeploying the
//     index under log/tombstone/drift pressure, durable state;
//
//   - tiering: internal/tier — out-of-core cluster storage for the
//     epoch base: an on-disk cluster image (ivfpq.WriteImage/OpenImage),
//     a frequency-driven hot set pinned under a byte budget (reusing
//     the placement greedy), an async prefetcher ahead of the probe
//     list, and cold streaming through the blocked scan kernels;
//     results stay bit-identical to in-RAM search, injected I/O faults
//     surface as wrapped errors or counted skip-degraded answers, and
//     a fault-injection + golden-equivalence harness proves both;
//
//   - serving: internal/serve — micro-batching, admission control,
//     request coalescing, an LRU result cache, a mirrored write batcher,
//     and the shard HTTP surface (wire types + handler) every serving
//     binary shares; internal/workload (Poisson arrivals, Zipfian query
//     streams, mixed churn) and internal/metrics (tables, streaming
//     latency histograms) support it;
//
//   - distribution: internal/cluster — a scatter-gather router over live
//     shard processes: float-domain top-k merging with an
//     authoritative-owner filter, write routing by stable ID hash,
//     health probing with exclusion and rejoin, per-shard circuit
//     breaking, hedged requests past a shard's observed latency
//     quantile, and in-process shard fleets for demos and drills;
//
//   - filtered search: internal/filter — a per-index attribute store
//     (typed int64/string tags as compressed bitmap posting lists), a
//     predicate language (equality, IN, integer ranges, AND/OR) with a
//     parser and canonicalized identities, selectivity estimation from
//     posting cardinalities, and the adaptive pre/post-filter planner;
//     the allow-bitmap pushes down into the ivfpq scan kernels and the
//     mutable overlay, predicates ride the /search wire through router
//     and shards, and planning counters aggregate on /stats;
//
//   - observability: internal/obs — request tracing (span trees,
//     traceparent propagation router->shard, tail-based slow/error
//     retention behind GET /trace/recent), hand-rolled Prometheus text
//     exposition on GET /metrics, process health stats, kernel-level
//     bandwidth accounting (achieved ADC scan GB/s against the archmodel
//     roofline), the SLO burn-rate engine and per-query cost accounting,
//     and the search-quality plane: shadow-oracle re-execution of a
//     sampled query fraction against the exact full-width scan of the
//     same epoch snapshot, streaming recall@k with Wilson intervals
//     sliced by selectivity/nprobe/tenant, and a KL drift detector, all
//     served on GET /quality with a worst-of fleet rollup at the router;
//     nil-safe throughout, so every layer instruments unconditionally
//     and a disabled tracer costs a nil check;
//
//   - harness: internal/bench regenerates every table and figure of the
//     paper's evaluation plus the serving, updates, cluster, filtered,
//     tiered, and quality sweeps, each with self-checking machine-readable
//     artifacts; the root-level benchmarks in bench_test.go expose one
//     testing.B target per artifact.
//
// Entry points: cmd/upanns-datagen (dataset files), cmd/upanns-search
// (one-shot search), cmd/upanns-bench (experiments at configurable
// scale, with the -check regression gate), cmd/upanns-serve (one HTTP
// serving process — mutable single host or shard), and cmd/upanns-router
// (the distributed scatter-gather front). Walkthroughs live under
// examples/.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// architecture diagram, and OPERATIONS.md for the deployment runbook.
package repro
