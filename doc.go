// Package repro is a from-scratch Go reproduction of "UpANNS: Enhancing
// Billion-Scale ANNS Efficiency with Real-World PIM Architecture"
// (SC '25). The library lives under internal/: the UpANNS engine in
// internal/core, the UPMEM PIM simulator in internal/pim, the shared
// IVFPQ index in internal/ivfpq, and the roofline-modelled Faiss-CPU/GPU
// comparators in internal/baseline. The benchmark harness in
// internal/bench regenerates every table and figure of the paper's
// evaluation; the root-level benchmarks in bench_test.go expose one
// testing.B target per artifact.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured record.
package repro
