// Command upanns-datagen generates the synthetic evaluation datasets in
// the standard fvecs/ivecs formats, so they can be inspected, reused, or
// swapped for the real SIFT1B/DEEP1B/SPACEV1B files.
//
// Usage:
//
//	upanns-datagen -dataset sift -n 100000 -queries 1000 -out /tmp/sift
//
// writes /tmp/sift.base.fvecs, /tmp/sift.query.fvecs and
// /tmp/sift.groundtruth.ivecs (exact top-100 neighbors).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
)

func main() {
	var (
		name    = flag.String("dataset", "sift", "dataset family: sift, deep, spacev")
		n       = flag.Int("n", 100000, "number of base vectors")
		queries = flag.Int("queries", 1000, "number of query vectors")
		gtK     = flag.Int("gt-k", 100, "ground-truth neighbors per query (0 = skip)")
		out     = flag.String("out", "", "output path prefix (required)")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "missing -out path prefix")
		os.Exit(2)
	}
	var spec dataset.Spec
	switch *name {
	case "sift":
		spec = dataset.SIFT1B
	case "deep":
		spec = dataset.DEEP1B
	case "spacev":
		spec = dataset.SPACEV1B
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q (sift, deep, spacev)\n", *name)
		os.Exit(2)
	}

	fmt.Printf("generating %s: %d base vectors (dim %d), %d queries\n", spec.Name, *n, spec.Dim, *queries)
	ds := dataset.Generate(spec, *n, *seed)
	q := ds.Queries(*queries, *seed+1)

	write := func(path string, fn func(*os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
	write(*out+".base.fvecs", func(f *os.File) error { return dataset.WriteFvecs(f, ds.Vectors) })
	write(*out+".query.fvecs", func(f *os.File) error { return dataset.WriteFvecs(f, q) })

	if *gtK > 0 {
		fmt.Println("computing exact ground truth...")
		gt := dataset.GroundTruth(ds.Vectors, q, *gtK)
		lists := make([][]int32, len(gt))
		for i, cands := range gt {
			lists[i] = make([]int32, len(cands))
			for j, c := range cands {
				lists[i][j] = int32(c.ID)
			}
		}
		write(*out+".groundtruth.ivecs", func(f *os.File) error { return dataset.WriteIvecs(f, lists) })
	}
}
