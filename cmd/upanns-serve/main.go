// Command upanns-serve exposes an UpANNS deployment as an HTTP service:
// the online counterpart of the one-shot upanns-search, and the shard
// process of a distributed deployment fronted by upanns-router.
// Concurrent single-query requests are coalesced into micro-batches by
// the internal/serve scheduler before they reach the simulated PIM
// system, so the DPU-side batching economics the paper measures (Fig. 16)
// carry through to an interactive serving path.
//
// In single-host mode the index is deployed through internal/mutable, so
// the corpus is updatable while serving: POST /upsert and /delete stage
// writes in the epoch overlay (batched by the serve-side write batcher),
// and a background compactor republishes the PIM deployment when log,
// tombstone, or drift pressure crosses its threshold — without pausing
// reads. Multi-host mode (-hosts > 1) remains read-only.
//
// With -tiered, the epoch base is served out of core (internal/tier):
// cluster payloads live in an on-disk image, a frequency-driven hot set
// is pinned in RAM under -tier-hot-mb, and probed clusters are prefetched
// ahead of the scan. Results are bit-identical to the in-RAM deployment;
// /metrics gains the upanns_tier_* family.
//
// Start against a dataset written by upanns-datagen, or a synthetic one:
//
//	upanns-serve -base /tmp/sift.base.fvecs -addr :8080
//	upanns-serve -synthetic sift -n 50000 -addr :8080
//
// With -schema, vectors carry typed attribute tags and searches may be
// constrained by predicates (internal/filter): upserts take an "attrs"
// object, /search takes a "filter" expression, and the
// selectivity-adaptive executor chooses between pre- and post-filtering
// per query:
//
//	upanns-serve -synthetic sift -n 50000 -schema "tenant:int,lang:string" -addr :8080
//
// Endpoints (wire types in internal/serve/http.go):
//
//	POST /search  {"vector": [...], "k": 5, "filter": "tenant = 42"}  -> {"ids": [...], "distances": [...]}
//	POST /upsert  {"id": 7, "vector": [...], "attrs": {"tenant": 42}} -> {"id": 7}
//	POST /delete  {"id": 7}                    -> {"id": 7}
//	GET  /stats                                -> shard id + serving/write/index/filter counters (JSON)
//	GET  /healthz                              -> 200 while serving; 503 while draining
//	GET  /metrics                              -> Prometheus text exposition (process, tracer, kernel, serving families)
//	GET  /slo                                  -> burn-rate snapshot of the availability/latency/quality objectives (see -slo-*)
//	GET  /quality                              -> shadow-oracle recall estimates + drift state (see -quality-sample)
//	GET  /trace/recent                         -> recent + slow/error span trees (see -trace-sample, -trace-slow)
//	GET  /debug/costly                         -> per-query cost heat ring (most expensive queries by bytes moved)
//	GET  /debug/bundle                         -> postmortem tar.gz: flight record, traces, metrics, SLO, profiles
//	GET  /debug/pprof/                         -> standard Go profiling endpoints
//
// Under overload the server sheds with 503; requests that miss their
// deadline return 504. On SIGINT/SIGTERM the server drains gracefully:
// admission stops (new requests get 503, /healthz flips to 503 so a
// router or load balancer stops routing here), in-flight batches and
// queued writes flush, a pending compaction finishes, then the process
// exits. A second signal forces immediate exit.
//
// As a cluster shard, set -shard-id so the router's aggregated /stats
// reports this shard under the identity the operator deployed it with
// (the router discovers the id from /healthz; operators should check it
// matches the intended -shards slot, since ID ownership is positional).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/filter"
	"repro/internal/ivfpq"
	"repro/internal/multihost"
	"repro/internal/mutable"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/tier"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "upanns-serve:", err)
	os.Exit(1)
}

// attrSchema is the -schema flag parsed once in main; mutableConfig
// deploys every (single-host) index with it so a state restore and a
// cold build agree on whether filtering is enabled.
var attrSchema *filter.Schema

// tierCfg is the -tiered flag family resolved once in main; when set,
// mutableConfig deploys the epoch base out of core through
// internal/tier instead of holding posting lists in RAM.
var tierCfg *mutable.TierConfig

func main() {
	var (
		basePath  = flag.String("base", "", "base vectors (.fvecs, e.g. from upanns-datagen); alternative to -synthetic")
		synthetic = flag.String("synthetic", "", "generate a synthetic dataset instead: sift, deep, spacev")
		n         = flag.Int("n", 50000, "synthetic base vectors")
		nlist     = flag.Int("ivf", 64, "IVF cluster count")
		m         = flag.Int("m", 0, "PQ subquantizers (0 = dataset default / dim/8)")
		nprobe    = flag.Int("nprobe", 8, "clusters probed per query")
		k         = flag.Int("k", 10, "neighbors returned")
		dpus      = flag.Int("dpus", 64, "simulated DPUs (per host)")
		hosts     = flag.Int("hosts", 1, "hosts; >1 shards the dataset via internal/multihost (read-only)")
		seed      = flag.Uint64("seed", 1, "random seed")

		addr     = flag.String("addr", ":8080", "HTTP listen address")
		shardID  = flag.String("shard-id", "", "shard identity reported on /stats and /healthz (set by upanns-router deployments)")
		maxBatch = flag.Int("max-batch", 32, "micro-batch size cap")
		linger   = flag.Duration("linger", 200*time.Microsecond, "max wait to fill a micro-batch")
		queue    = flag.Int("queue", 1024, "admission queue depth")
		timeout  = flag.Duration("timeout", time.Second, "per-request deadline")
		cache    = flag.Int("cache", 4096, "LRU result-cache entries (0 disables)")

		schemaSpec = flag.String("schema", "", `attribute schema enabling filtered search, e.g. "tenant:int,lang:string" (single-host mode); upserts may then carry "attrs" and searches a "filter" predicate`)
		maxK       = flag.Int("max-k", 0, "largest per-request k override accepted on /search (0 = -k)")

		traceSample = flag.Int("trace-sample", 1, "head-sample every Nth request into GET /trace/recent (1 = all, 0 disables tracing; incoming traceparent headers override)")
		traceSlow   = flag.Duration("trace-slow", 50*time.Millisecond, "latency above which a finished trace is retained in the slow-query log")

		sloAvail   = flag.Float64("slo-availability", 0.999, "availability objective: fraction of requests that must not fail server-side (0 disables the SLO tracker)")
		sloLatency = flag.Float64("slo-latency", 0.99, "latency objective: fraction of successful requests answering within -slo-latency-threshold")
		sloLatThr  = flag.Duration("slo-latency-threshold", 50*time.Millisecond, "latency SLI boundary for the latency objective")
		costTopK   = flag.Int("cost-top", 32, "per-query cost heat-ring size served at GET /debug/costly (0 disables cost accounting)")

		qualitySample = flag.Int("quality-sample", 0, "shadow-oracle sampling: re-execute every Nth answered query exactly and serve recall estimates at GET /quality (0 disables; single-host mode)")
		qualityRecall = flag.Float64("quality-recall-target", 0.9, "per-sample recall@k below which a shadow comparison burns quality SLO budget")
		qualityDrift  = flag.Float64("quality-drift-threshold", 0.5, "KL-divergence excess over the rolling baseline at which the drift detector pages")

		writeBatch    = flag.Int("write-batch", 64, "write micro-batch size cap")
		writeLinger   = flag.Duration("write-linger", time.Millisecond, "max wait to fill a write batch")
		compactEvery  = flag.Duration("compact-interval", 25*time.Millisecond, "compaction pressure poll period (0 disables the background compactor)")
		drainDeadline = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight HTTP requests")
		statePath     = flag.String("state", "", "durable index state: loaded at startup when present, written on graceful shutdown (single-host mode)")

		tiered        = flag.Bool("tiered", false, "serve the epoch base out of core: cluster payloads live in an image file and stream through a hot-set/prefetch cluster store (single-host mode)")
		tierDir       = flag.String("tier-dir", "", "directory for epoch image files (default: system temp dir)")
		tierHotMB     = flag.Int("tier-hot-mb", 64, "hot-set byte budget in MiB pinned in RAM by the tiered store")
		tierPrefetch  = flag.Int("tier-prefetch", 2, "tiered prefetch workers warming probed clusters (0 disables prefetch)")
		tierRebalance = flag.Duration("tier-rebalance", time.Second, "hot-set rebalance period under observed probe frequencies (0 disables)")
	)
	flag.Parse()
	if *statePath != "" && *hosts > 1 {
		// Refuse rather than silently serve without the durability the
		// operator asked for: only single-host (mutable) mode persists.
		fail(fmt.Errorf("-state requires single-host mode (-hosts 1); multi-host sharding is read-only"))
	}
	var schema *filter.Schema
	if *schemaSpec != "" {
		if *hosts > 1 {
			fail(fmt.Errorf("-schema requires single-host mode (-hosts 1); the filter executor lives in the mutable deployment"))
		}
		var err error
		if schema, err = filter.ParseSchema(*schemaSpec); err != nil {
			fail(err)
		}
	}
	attrSchema = schema
	if *tiered {
		if *hosts > 1 {
			fail(fmt.Errorf("-tiered requires single-host mode (-hosts 1); the tiered store lives in the mutable deployment"))
		}
		if *statePath != "" {
			// The epoch base already lives in the image file; WriteTo-style
			// state snapshots are redundant with it and unsupported.
			fail(fmt.Errorf("-tiered is incompatible with -state: tiered deployments keep the base in the epoch image file"))
		}
		tierCfg = &mutable.TierConfig{
			Dir: *tierDir,
			Store: tier.Config{
				ShardID:         *shardID,
				HotBytes:        int64(*tierHotMB) << 20,
				PrefetchWorkers: *tierPrefetch,
				RebalanceEvery:  *tierRebalance,
			},
		}
	}

	var costs *obs.CostTracker
	if *costTopK > 0 {
		costs = obs.NewCostTracker(*costTopK)
	}

	var backend serve.Backend
	var updatable *mutable.UpdatableIndex
	if *statePath != "" && *hosts == 1 {
		if u, ok := loadState(*statePath, *nprobe, *k, *dpus, *seed, *compactEvery); ok {
			backend, updatable = u, u
		}
	}
	var base *vecmath.Matrix
	if backend == nil {
		var mm int
		var err error
		base, mm, err = loadBase(*basePath, *synthetic, *n, *m, *seed)
		if err != nil {
			fail(err)
		}
		backend, updatable, err = buildBackend(base, mm, *nlist, *nprobe, *k, *dpus, *hosts, *seed, *compactEvery)
		if err != nil {
			fail(err)
		}
	}

	var slo *obs.SLOTracker
	if *sloAvail > 0 {
		scfg := obs.SLOConfig{
			Name:               *shardID,
			AvailabilityTarget: *sloAvail,
			LatencyTarget:      *sloLatency,
			LatencyThreshold:   *sloLatThr,
		}
		if *qualitySample > 0 {
			// The quality objective: at least 90% of shadow-checked samples
			// must meet -quality-recall-target while drift is quiet.
			scfg.QualityTarget = 0.9
		}
		slo = obs.NewSLOTracker(scfg)
	}
	var quality *obs.Quality
	if *qualitySample > 0 {
		if updatable == nil {
			fail(fmt.Errorf("-quality-sample requires single-host mode (-hosts 1); the shadow oracle lives in the mutable deployment"))
		}
		quality = obs.NewQuality(obs.QualityConfig{
			ShardID:        *shardID,
			SampleEvery:    *qualitySample,
			RecallTarget:   *qualityRecall,
			DriftThreshold: *qualityDrift,
		}, updatable.QualityOracle(), updatable.ClusterOccupancy, slo)
	}

	srv, err := serve.NewServer(serve.Config{
		K:              *k,
		MaxK:           *maxK,
		MaxBatch:       *maxBatch,
		MaxLinger:      *linger,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		CacheSize:      *cache,
		Costs:          costs,
		Quality:        quality,
	}, backend)
	if err != nil {
		fail(err)
	}

	var writer *serve.WriteBatcher
	if updatable != nil {
		writer = serve.NewWriteBatcher(serve.WriteConfig{
			MaxBatch:       *writeBatch,
			MaxLinger:      *writeLinger,
			DefaultTimeout: *timeout,
			// Writes change answers; drop cached results before the
			// writers are acknowledged so reads never see stale hits.
			OnApplied: srv.InvalidateCache,
		}, updatable)
	}

	hcfg := serve.HandlerConfig{ShardID: *shardID, Writer: writer, Costs: costs, SLO: slo, Quality: quality}
	if *traceSample > 0 {
		hcfg.Tracer = obs.NewTracer(obs.TracerConfig{
			SampleEvery:   *traceSample,
			SlowThreshold: *traceSlow,
		})
	}
	if updatable != nil {
		hcfg.IndexStats = func() any { return updatable.Stats() }
		hcfg.Metrics = updatable.WriteMetrics
		if schema != nil {
			hcfg.FilterStats = updatable.FilterStats
		}
	}
	handler := serve.NewHandler(srv, hcfg)

	hs := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// First signal: drain. Re-arm signals so a second one kills the
		// process immediately instead of waiting out the drain.
		stop()
		force := make(chan os.Signal, 1)
		signal.Notify(force, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-force
			log.Println("second signal: forcing exit")
			os.Exit(1)
		}()
		log.Println("shutting down: admission stopped, draining in-flight work...")
		handler.StartDraining()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainDeadline)
		defer cancel()
		hs.Shutdown(shutdownCtx) //nolint:errcheck // drain is best-effort under its deadline
	}()

	mode := "read-only"
	nvec := int64(0)
	if updatable != nil {
		mode = "mutable (upsert/delete enabled)"
		if schema != nil {
			mode = "mutable + filtered (schema " + schema.Spec() + ")"
		}
		if tierCfg != nil {
			mode += fmt.Sprintf(" + tiered (hot budget %d MiB)", tierCfg.Store.HotBytes>>20)
		}
		nvec = updatable.Stats().BaseVectors
	} else if base != nil {
		nvec = int64(base.Rows)
	}
	tag := ""
	if *shardID != "" {
		tag = fmt.Sprintf(" [shard %s]", *shardID)
	}
	log.Printf("serving %d vectors (dim %d) on %s [%s]%s: POST /search /upsert /delete, GET /stats", nvec, backend.Dim(), *addr, mode, tag)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	// ListenAndServe returns as soon as Shutdown starts; wait for the
	// in-flight handlers to drain, then close the layers in dependency
	// order: read batches flush, queued writes apply, and a pending
	// compaction finishes before exit.
	<-drained
	srv.Close()
	if writer != nil {
		writer.Close()
	}
	// The quality plane closes before the index: its shadow worker
	// executes against the deployment it samples.
	quality.Close()
	if updatable != nil {
		updatable.Close()
		log.Printf("final index state: epoch %d, %d compactions, %d pending log entries",
			updatable.Stats().Epoch, updatable.Stats().Compactions, updatable.Stats().PendingLog)
		if *statePath != "" {
			if err := saveState(*statePath, updatable); err != nil {
				log.Printf("persisting state: %v", err)
			} else {
				log.Printf("state persisted to %s (pending writes survive the restart)", *statePath)
			}
		}
	}
	log.Printf("final stats: %s", srv.Stats().Latency)
}

// loadState restores a persisted updatable index, reporting whether one
// was loaded (a missing file just means a cold start).
func loadState(path string, nprobe, k, dpus int, seed uint64, compactEvery time.Duration) (*mutable.UpdatableIndex, bool) {
	f, err := os.Open(path)
	if err != nil {
		if !os.IsNotExist(err) {
			fail(err)
		}
		return nil, false
	}
	defer f.Close()
	u, err := mutable.Read(f, mutableConfig(nprobe, k, dpus, seed, compactEvery))
	if err != nil {
		fail(fmt.Errorf("loading state from %s: %w", path, err))
	}
	st := u.Stats()
	log.Printf("restored state from %s: epoch %d, %d base vectors, %d pending log entries, %d tombstones",
		path, st.Epoch, st.BaseVectors, st.PendingLog, st.Tombstones)
	return u, true
}

// saveState atomically persists the updatable index next to path.
func saveState(path string, u *mutable.UpdatableIndex) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := u.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// mutableConfig is the single-host deployment config: the shared
// streaming policy (mutable.ServingConfig: K slack, CAE off, one DIMM)
// plus this server's compactor poll period.
func mutableConfig(nprobe, k, dpus int, seed uint64, compactEvery time.Duration) mutable.Config {
	mcfg := mutable.ServingConfig(nprobe, k, dpus, seed)
	mcfg.CheckInterval = compactEvery
	mcfg.Schema = attrSchema
	mcfg.Tier = tierCfg
	return mcfg
}

// loadBase reads or generates the base vectors and resolves M.
func loadBase(basePath, synthetic string, n, m int, seed uint64) (*vecmath.Matrix, int, error) {
	switch {
	case synthetic != "":
		var spec dataset.Spec
		switch synthetic {
		case "sift":
			spec = dataset.SIFT1B
		case "deep":
			spec = dataset.DEEP1B
		case "spacev":
			spec = dataset.SPACEV1B
		default:
			return nil, 0, fmt.Errorf("unknown synthetic dataset %q (sift, deep, spacev)", synthetic)
		}
		log.Printf("generating synthetic %s: %d vectors", spec.Name, n)
		ds := dataset.Generate(spec, n, seed)
		if m == 0 {
			m = spec.M
		}
		return ds.Vectors, m, nil
	case basePath != "":
		f, err := os.Open(basePath)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		base, err := dataset.ReadFvecs(f, 0)
		if err != nil {
			return nil, 0, err
		}
		if m == 0 {
			m = base.Dim / 8
		}
		log.Printf("loaded %d vectors (dim %d) from %s", base.Rows, base.Dim, basePath)
		return base, m, nil
	default:
		return nil, 0, fmt.Errorf("provide either -base or -synthetic")
	}
}

// buildBackend trains and deploys the index. Single-host deployments go
// through internal/mutable (updatable, epoch-compacted); multi-host
// sharding stays read-only.
func buildBackend(base *vecmath.Matrix, m, nlist, nprobe, k, dpus, hosts int, seed uint64, compactEvery time.Duration) (serve.Backend, *mutable.UpdatableIndex, error) {
	ecfg := core.DefaultConfig()
	ecfg.NProbe = nprobe
	ecfg.K = k
	ecfg.Seed = seed

	if hosts > 1 {
		log.Printf("deploying on %d hosts x %d DPUs (read-only)...", hosts, dpus)
		cl, err := multihost.Build(base, nil, multihost.Config{
			Hosts:       hosts,
			DPUsPerHost: dpus,
			Index:       ivfpq.Params{NList: nlist, M: m, Seed: seed, TrainSub: 16384},
			Engine:      ecfg,
		})
		if err != nil {
			return nil, nil, err
		}
		return serve.NewClusterBackend(cl, k), nil, nil
	}

	log.Printf("training IVFPQ: IVF %d, M %d", nlist, m)
	ix := ivfpq.Train(base, ivfpq.Params{NList: nlist, M: m, Seed: seed, TrainSub: 16384})
	ix.Add(base, 0)
	// Bootstrap placement frequencies from a self-sample of the base set;
	// a production deployment would feed a historical query log.
	sample := vecmath.WrapMatrix(base.Data[:min(512, base.Rows)*base.Dim], min(512, base.Rows), base.Dim)
	freqs := workload.ClusterFrequencies(ix.Coarse, sample, nprobe)

	log.Printf("deploying updatable index on %d simulated DPUs...", dpus)
	u, err := mutable.New(ix, freqs, mutableConfig(nprobe, k, dpus, seed, compactEvery))
	if err != nil {
		return nil, nil, err
	}
	return u, u, nil
}
