// Command upanns-serve exposes an UpANNS deployment as an HTTP service:
// the online counterpart of the one-shot upanns-search. Concurrent
// single-query requests are coalesced into micro-batches by the
// internal/serve scheduler before they reach the simulated PIM system, so
// the DPU-side batching economics the paper measures (Fig. 16) carry
// through to an interactive serving path.
//
// Start against a dataset written by upanns-datagen, or a synthetic one:
//
//	upanns-serve -base /tmp/sift.base.fvecs -addr :8080
//	upanns-serve -synthetic sift -n 50000 -addr :8080
//
// Endpoints:
//
//	POST /search  {"vector": [...]}            -> {"ids": [...], "distances": [...]}
//	GET  /stats                                -> serving counters + latency quantiles (JSON)
//	GET  /healthz                              -> 200 once the index is deployed
//
// Under overload the server sheds with 503; requests that miss their
// deadline return 504.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ivfpq"
	"repro/internal/multihost"
	"repro/internal/pim"
	"repro/internal/serve"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "upanns-serve:", err)
	os.Exit(1)
}

func main() {
	var (
		basePath  = flag.String("base", "", "base vectors (.fvecs, e.g. from upanns-datagen); alternative to -synthetic")
		synthetic = flag.String("synthetic", "", "generate a synthetic dataset instead: sift, deep, spacev")
		n         = flag.Int("n", 50000, "synthetic base vectors")
		nlist     = flag.Int("ivf", 64, "IVF cluster count")
		m         = flag.Int("m", 0, "PQ subquantizers (0 = dataset default / dim/8)")
		nprobe    = flag.Int("nprobe", 8, "clusters probed per query")
		k         = flag.Int("k", 10, "neighbors returned")
		dpus      = flag.Int("dpus", 64, "simulated DPUs (per host)")
		hosts     = flag.Int("hosts", 1, "hosts; >1 shards the dataset via internal/multihost")
		seed      = flag.Uint64("seed", 1, "random seed")

		addr     = flag.String("addr", ":8080", "HTTP listen address")
		maxBatch = flag.Int("max-batch", 32, "micro-batch size cap")
		linger   = flag.Duration("linger", 200*time.Microsecond, "max wait to fill a micro-batch")
		queue    = flag.Int("queue", 1024, "admission queue depth")
		timeout  = flag.Duration("timeout", time.Second, "per-request deadline")
		cache    = flag.Int("cache", 4096, "LRU result-cache entries (0 disables)")
	)
	flag.Parse()

	base, mm, err := loadBase(*basePath, *synthetic, *n, *m, *seed)
	if err != nil {
		fail(err)
	}
	backend, err := buildBackend(base, mm, *nlist, *nprobe, *k, *dpus, *hosts, *seed)
	if err != nil {
		fail(err)
	}

	srv, err := serve.NewServer(serve.Config{
		K:              *k,
		MaxBatch:       *maxBatch,
		MaxLinger:      *linger,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		CacheSize:      *cache,
	}, backend)
	if err != nil {
		fail(err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", func(w http.ResponseWriter, r *http.Request) {
		handleSearch(srv, backend.Dim(), w, r)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	hs := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Println("shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx)
	}()

	log.Printf("serving %d vectors (dim %d) on %s: POST /search, GET /stats", base.Rows, base.Dim, *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	// ListenAndServe returns as soon as Shutdown starts; wait for the
	// in-flight handlers to drain before closing the serving layer, so
	// requests inside the grace period still get answers.
	<-drained
	srv.Close()
	log.Printf("final stats: %s", srv.Stats().Latency)
}

// loadBase reads or generates the base vectors and resolves M.
func loadBase(basePath, synthetic string, n, m int, seed uint64) (*vecmath.Matrix, int, error) {
	switch {
	case synthetic != "":
		var spec dataset.Spec
		switch synthetic {
		case "sift":
			spec = dataset.SIFT1B
		case "deep":
			spec = dataset.DEEP1B
		case "spacev":
			spec = dataset.SPACEV1B
		default:
			return nil, 0, fmt.Errorf("unknown synthetic dataset %q (sift, deep, spacev)", synthetic)
		}
		log.Printf("generating synthetic %s: %d vectors", spec.Name, n)
		ds := dataset.Generate(spec, n, seed)
		if m == 0 {
			m = spec.M
		}
		return ds.Vectors, m, nil
	case basePath != "":
		f, err := os.Open(basePath)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		base, err := dataset.ReadFvecs(f, 0)
		if err != nil {
			return nil, 0, err
		}
		if m == 0 {
			m = base.Dim / 8
		}
		log.Printf("loaded %d vectors (dim %d) from %s", base.Rows, base.Dim, basePath)
		return base, m, nil
	default:
		return nil, 0, fmt.Errorf("provide either -base or -synthetic")
	}
}

// buildBackend trains, deploys and wraps the engine (or sharded cluster).
func buildBackend(base *vecmath.Matrix, m, nlist, nprobe, k, dpus, hosts int, seed uint64) (serve.Backend, error) {
	ecfg := core.DefaultConfig()
	ecfg.NProbe = nprobe
	ecfg.K = k
	ecfg.Seed = seed

	if hosts > 1 {
		log.Printf("deploying on %d hosts x %d DPUs...", hosts, dpus)
		cl, err := multihost.Build(base, nil, multihost.Config{
			Hosts:       hosts,
			DPUsPerHost: dpus,
			Index:       ivfpq.Params{NList: nlist, M: m, Seed: seed, TrainSub: 16384},
			Engine:      ecfg,
		})
		if err != nil {
			return nil, err
		}
		return serve.NewClusterBackend(cl, k), nil
	}

	log.Printf("training IVFPQ: IVF %d, M %d", nlist, m)
	ix := ivfpq.Train(base, ivfpq.Params{NList: nlist, M: m, Seed: seed, TrainSub: 16384})
	ix.Add(base, 0)
	spec := pim.DefaultSpec()
	spec.NumDIMMs = 1
	spec.DPUsPerDIMM = dpus
	sys := pim.NewSystem(spec)
	// Bootstrap placement frequencies from a self-sample of the base set;
	// a production deployment would feed a historical query log.
	sample := vecmath.WrapMatrix(base.Data[:min(512, base.Rows)*base.Dim], min(512, base.Rows), base.Dim)
	freqs := workload.ClusterFrequencies(ix.Coarse, sample, nprobe)
	log.Printf("deploying on %d simulated DPUs...", dpus)
	eng, err := core.Build(ix, sys, freqs, ecfg)
	if err != nil {
		return nil, err
	}
	return serve.NewEngineBackend(eng), nil
}

type searchRequest struct {
	Vector []float32 `json:"vector"`
}

type searchResponse struct {
	IDs       []int64   `json:"ids"`
	Distances []float32 `json:"distances"`
}

func handleSearch(srv *serve.Server, dim int, w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
		return
	}
	if len(req.Vector) != dim {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("vector has %d dims, index has %d", len(req.Vector), dim)})
		return
	}
	cands, err := srv.Search(r.Context(), req.Vector)
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	case errors.Is(err, serve.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": "deadline exceeded"})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	resp := searchResponse{IDs: make([]int64, len(cands)), Distances: make([]float32, len(cands))}
	for i, c := range cands {
		resp.IDs[i] = c.ID
		resp.Distances[i] = c.Dist
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
