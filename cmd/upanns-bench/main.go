// Command upanns-bench regenerates the paper's evaluation artifacts: every
// table and figure of Section 5, at a configurable scaled-down size.
//
// Usage:
//
//	upanns-bench [flags] -exp all|table1|fig1|...|fig20|kernels|recall|serving|updates|cluster|filtered
//
// Examples:
//
//	upanns-bench -exp fig10                # one experiment at defaults
//	upanns-bench -exp all -n 96000 -dpus 64
//	upanns-bench -exp all -quick           # reduced grid for a fast pass
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all' (ids: "+strings.Join(bench.IDs(), ", ")+")")
		quick   = flag.Bool("quick", false, "use the reduced quick grid")
		n       = flag.Int("n", 0, "base vectors per dataset (0 = default)")
		queries = flag.Int("queries", 0, "queries per batch (0 = default)")
		dpus    = flag.Int("dpus", 0, "simulated DPUs (0 = default)")
		k       = flag.Int("k", 0, "top-k (0 = default)")
		seed    = flag.Uint64("seed", 0, "random seed (0 = default)")
		jsonDir = flag.String("json", "", "directory to write BENCH_<id>.json artifacts into (experiments with machine-readable results)")
		check   = flag.Bool("check", false, "exit non-zero if any artifact reports acceptance-shape violations (the CI regression gate)")
	)
	flag.Parse()

	o := bench.DefaultOptions()
	if *quick {
		o = bench.QuickOptions()
	}
	if *n > 0 {
		o.N = *n
	}
	if *queries > 0 {
		o.Queries = *queries
	}
	if *dpus > 0 {
		o.DPUs = *dpus
	}
	if *k > 0 {
		o.K = *k
	}
	if *seed > 0 {
		o.Seed = *seed
	}

	ctx := bench.NewContext(o)
	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available: all, %s\n",
					id, strings.Join(bench.IDs(), ", "))
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "creating artifact dir: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("UpANNS benchmark harness: N=%d, queries=%d, DPUs=%d, IVF=%v, nprobe=%v, k=%d\n\n",
		o.N, o.Queries, o.DPUs, o.IVFGrid, o.NProbeGrid, o.K)
	var violations []string
	checkedArtifacts := 0
	for _, e := range selected {
		start := time.Now()
		rep, err := e.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		if rep.Artifact == nil {
			continue
		}
		if *jsonDir != "" {
			path := filepath.Join(*jsonDir, "BENCH_"+rep.ID+".json")
			raw, err := json.MarshalIndent(rep.Artifact, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: marshaling artifact: %v\n", e.ID, err)
				os.Exit(1)
			}
			if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing artifact: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
		if *check {
			checkedArtifacts++
			violations = append(violations, rep.Artifact.Violations()...)
		}
	}
	if *check {
		if checkedArtifacts == 0 {
			// A gate that verified nothing must not go green.
			fmt.Fprintln(os.Stderr, "-check: none of the selected experiments produce an artifact; nothing was verified")
			os.Exit(1)
		}
		if len(violations) > 0 {
			fmt.Fprintln(os.Stderr, "acceptance-shape violations:")
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "  - "+v)
			}
			os.Exit(1)
		}
		fmt.Printf("acceptance shapes: OK (%d artifacts checked)\n", checkedArtifacts)
	}
}
