// Command upanns-router is the scatter-gather front of a sharded UpANNS
// cluster: it fans each query out to every live upanns-serve shard,
// merges the per-shard top-k lists in the float domain, and routes
// upserts/deletes to the owning shard by stable ID hashing (so each
// shard's mutable overlay and compaction keep working untouched).
//
// Start three shards and a router over them:
//
//	upanns-serve -synthetic sift -n 20000 -addr :8081 -shard-id s0 &
//	upanns-serve -synthetic sift -n 20000 -addr :8082 -shard-id s1 &
//	upanns-serve -synthetic sift -n 20000 -addr :8083 -shard-id s2 &
//	upanns-router -shards http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 -addr :8080
//
// The router speaks the same wire protocol as a single shard (POST
// /search /upsert /delete; see internal/serve/http.go), so clients need
// no changes when a deployment grows from one host to many. GET /stats
// aggregates the router's per-shard view (health, breaker state, hedge
// counts, latency quantiles) with every live shard's own /stats payload;
// GET /healthz is 200 while the router serves and at least one shard is
// healthy.
//
// Observability: GET /metrics serves the router's Prometheus families
// (upanns_router_*, per-shard labeled series, tracer and process
// counters), GET /slo the fleet burn-rate rollup (the router's own
// availability/latency/integrity objectives plus every reachable
// shard's snapshot, with a worst-of verdict), GET /quality the fleet
// quality rollup (every reachable shard's shadow-oracle recall
// estimates and drift state, with a worst-of verdict; shards sample
// when started with -quality-sample), GET /trace/recent the
// recent and slow/error fanout traces, GET /debug/bundle a postmortem
// tar.gz (flight record with breaker/health transitions, traces,
// metrics, aggregated stats, profiles), and GET /debug/pprof/ the
// standard Go profiles. A request carrying a
// traceparent header joins a distributed trace: the router propagates
// the header to every shard in the fanout and grafts each shard's
// span-tree reply annotation under its shard.request span, so one trace
// shows fanout, per-shard queueing/batching/kernel stages, and the merge.
//
// Failure handling: a background prober polls every shard's /healthz and
// excludes failed or draining shards from the fanout until they recover;
// consecutive shard errors open a per-shard circuit breaker that retries
// with a single half-open probe per cooldown; shard requests unanswered
// past the shard's observed latency quantile are hedged with a duplicate.
// Queries keep answering as long as one shard is alive — shard loss
// degrades recall, not availability. Writes cannot fail over (ownership
// is by hash); a write whose owner is down returns 503 for the client to
// retry after rejoin.
//
// On SIGINT/SIGTERM the router drains: new requests shed with 503 and
// /healthz flips to 503 while in-flight fanouts finish; a second signal
// forces exit. The shard list order defines ID ownership — every router
// over one cluster must pass the same -shards order.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "upanns-router:", err)
	os.Exit(1)
}

func main() {
	var (
		shards = flag.String("shards", "", "comma-separated shard base URLs, e.g. http://127.0.0.1:8081,http://127.0.0.1:8082 (order defines ID ownership)")
		addr   = flag.String("addr", ":8080", "HTTP listen address")
		k      = flag.Int("k", 10, "merged neighbors returned per query (shards must serve k >= this)")
		maxK   = flag.Int("max-k", 0, "largest per-request k override accepted (0 = unbounded at the router; set to the shards' -max-k so oversized requests get one 400 instead of a fanout of shard 400s)")

		searchTimeout = flag.Duration("search-timeout", 5*time.Second, "whole-fanout budget per query")
		writeTimeout  = flag.Duration("write-timeout", 5*time.Second, "budget per routed write")

		hedgeQuantile = flag.Float64("hedge-quantile", 0.95, "per-shard latency quantile after which a straggling request is hedged (negative disables)")
		hedgeSamples  = flag.Int("hedge-min-samples", 64, "shard responses required before hedging activates")
		hedgeFloor    = flag.Duration("hedge-min-delay", time.Millisecond, "minimum hedge trigger delay")

		healthEvery   = flag.Duration("health-interval", 500*time.Millisecond, "shard health probe period (negative disables probing)")
		healthTimeout = flag.Duration("health-timeout", time.Second, "per-probe timeout")

		breakFails    = flag.Int("breaker-failures", 3, "consecutive shard failures that open its circuit breaker")
		breakCooldown = flag.Duration("breaker-cooldown", 2*time.Second, "open-breaker wait before the half-open probe")

		noOwnership = flag.Bool("no-ownership-filter", false, "disable authoritative-owner merging (for shards not populated by hash routing)")

		traceSample = flag.Int("trace-sample", 1, "head-sample every Nth fanout into GET /trace/recent (1 = all, 0 disables tracing; incoming traceparent headers override)")
		traceSlow   = flag.Duration("trace-slow", 50*time.Millisecond, "latency above which a finished fanout trace is retained in the slow-query log")

		sloAvail     = flag.Float64("slo-availability", 0.999, "availability objective: fraction of fanouts that must answer (0 disables the SLO tracker)")
		sloIntegrity = flag.Float64("slo-integrity", 0.99, "integrity objective: fraction of answered fanouts that must not be degraded by missing shards")
		sloLatency   = flag.Float64("slo-latency", 0.99, "latency objective: fraction of answered fanouts within -slo-latency-threshold")
		sloLatThr    = flag.Duration("slo-latency-threshold", 50*time.Millisecond, "latency SLI boundary for the latency objective")

		drainDeadline = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight HTTP requests")
	)
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fail(fmt.Errorf("provide -shards (comma-separated shard base URLs)"))
	}

	var tracer *obs.Tracer
	if *traceSample > 0 {
		tracer = obs.NewTracer(obs.TracerConfig{
			SampleEvery:   *traceSample,
			SlowThreshold: *traceSlow,
		})
	}
	var slo *obs.SLOTracker
	if *sloAvail > 0 {
		slo = obs.NewSLOTracker(obs.SLOConfig{
			Name:               "router",
			AvailabilityTarget: *sloAvail,
			IntegrityTarget:    *sloIntegrity,
			LatencyTarget:      *sloLatency,
			LatencyThreshold:   *sloLatThr,
		})
	}
	r, err := cluster.New(urls, cluster.Config{
		K:                 *k,
		MaxK:              *maxK,
		SearchTimeout:     *searchTimeout,
		WriteTimeout:      *writeTimeout,
		HedgeQuantile:     *hedgeQuantile,
		HedgeMinSamples:   *hedgeSamples,
		HedgeMinDelay:     *hedgeFloor,
		HealthInterval:    *healthEvery,
		HealthTimeout:     *healthTimeout,
		BreakerThreshold:  *breakFails,
		BreakerCooldown:   *breakCooldown,
		NoOwnershipFilter: *noOwnership,
		Tracer:            tracer,
		SLO:               slo,
	})
	if err != nil {
		fail(err)
	}

	hs := &http.Server{Addr: *addr, Handler: cluster.NewHandler(r)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// First signal: drain. Re-arm so a second signal forces exit.
		stop()
		force := make(chan os.Signal, 1)
		signal.Notify(force, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-force
			log.Println("second signal: forcing exit")
			os.Exit(1)
		}()
		log.Println("shutting down: admission stopped, draining in-flight fanouts...")
		r.StartDraining()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainDeadline)
		defer cancel()
		hs.Shutdown(shutdownCtx) //nolint:errcheck // drain is best-effort under its deadline
	}()

	log.Printf("routing over %d shards (%d healthy) on %s: POST /search /upsert /delete, GET /stats /healthz",
		r.NumShards(), r.HealthyShards(), *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	<-drained
	r.Close()
	st := r.Stats()
	log.Printf("final stats: %d searches (%d degraded, %d failed), %d writes, fanout %s",
		st.Searches, st.Degraded, st.NoShards+st.AllFailed, st.Writes, st.Latency)
}
