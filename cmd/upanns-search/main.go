// Command upanns-search builds an UpANNS deployment over a base vector
// file (or a generated synthetic dataset) and answers queries, printing
// neighbors, recall against exact ground truth, and the modelled timing.
//
// Usage:
//
//	upanns-search -base vectors.fvecs -query q.fvecs -nprobe 8 -k 10
//	upanns-search -synthetic sift -n 50000 -queries 100
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ivfpq"
	"repro/internal/metrics"
	"repro/internal/pim"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "upanns-search:", err)
	os.Exit(1)
}

func main() {
	var (
		basePath  = flag.String("base", "", "base vectors (.fvecs); alternative to -synthetic")
		queryPath = flag.String("query", "", "query vectors (.fvecs)")
		synthetic = flag.String("synthetic", "", "generate a synthetic dataset instead: sift, deep, spacev")
		n         = flag.Int("n", 50000, "synthetic base vectors")
		nq        = flag.Int("queries", 100, "synthetic query count")
		nlist     = flag.Int("ivf", 64, "IVF cluster count")
		m         = flag.Int("m", 0, "PQ subquantizers (0 = dataset default / dim/8)")
		nprobe    = flag.Int("nprobe", 8, "clusters probed per query")
		k         = flag.Int("k", 10, "neighbors returned")
		dpus      = flag.Int("dpus", 64, "simulated DPUs")
		show      = flag.Int("show", 3, "queries to print in full")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	var base, queries *vecmath.Matrix
	var err error
	switch {
	case *synthetic != "":
		var spec dataset.Spec
		switch *synthetic {
		case "sift":
			spec = dataset.SIFT1B
		case "deep":
			spec = dataset.DEEP1B
		case "spacev":
			spec = dataset.SPACEV1B
		default:
			fail(fmt.Errorf("unknown synthetic dataset %q", *synthetic))
		}
		ds := dataset.Generate(spec, *n, *seed)
		base = ds.Vectors
		queries = ds.Queries(*nq, *seed+1)
		if *m == 0 {
			*m = spec.M
		}
	case *basePath != "" && *queryPath != "":
		base, err = readFvecs(*basePath)
		if err != nil {
			fail(err)
		}
		queries, err = readFvecs(*queryPath)
		if err != nil {
			fail(err)
		}
		if *m == 0 {
			*m = base.Dim / 8
		}
	default:
		fail(fmt.Errorf("provide either -synthetic or both -base and -query"))
	}

	fmt.Printf("training IVFPQ: %d vectors, dim %d, IVF %d, M %d\n", base.Rows, base.Dim, *nlist, *m)
	ix := ivfpq.Train(base, ivfpq.Params{NList: *nlist, M: *m, Seed: *seed, TrainSub: 16384})
	ix.Add(base, 0)

	spec := pim.DefaultSpec()
	spec.NumDIMMs = 1
	spec.DPUsPerDIMM = *dpus
	sys := pim.NewSystem(spec)

	cfg := core.DefaultConfig()
	cfg.NProbe = *nprobe
	cfg.K = *k
	freqs := workload.ClusterFrequencies(ix.Coarse, queries, *nprobe)
	fmt.Printf("deploying on %d simulated DPUs...\n", *dpus)
	engine, err := core.Build(ix, sys, freqs, cfg)
	if err != nil {
		fail(err)
	}
	if r := engine.MeanReductionRate(); r > 0 {
		fmt.Printf("co-occurrence encoding: %.1f%% mean length reduction\n", 100*r)
	}

	br, err := engine.SearchBatch(queries)
	if err != nil {
		fail(err)
	}
	for qi := 0; qi < *show && qi < len(br.Results); qi++ {
		fmt.Printf("query %d:", qi)
		for _, c := range br.Results[qi] {
			fmt.Printf(" %d(%.3f)", c.ID, c.Dist)
		}
		fmt.Println()
	}

	gtQ := queries.Rows
	if gtQ > 200 {
		gtQ = 200
	}
	gt := dataset.GroundTruth(base, vecmath.WrapMatrix(queries.Data[:gtQ*queries.Dim], gtQ, queries.Dim), *k)
	fmt.Printf("recall@%d = %.3f (first %d queries, exact ground truth)\n",
		*k, dataset.Recall(br.Results[:gtQ], gt), gtQ)

	tm := br.Timing
	fmt.Printf("modelled batch latency %s (QPS %.0f): filter %s, schedule %s, xfer-in %s, kernel %s, xfer-out %s, reduce %s\n",
		metrics.Seconds(tm.Total()), br.QPS,
		metrics.Seconds(tm.HostFilter), metrics.Seconds(tm.HostSchedule),
		metrics.Seconds(tm.XferIn), metrics.Seconds(tm.Kernel),
		metrics.Seconds(tm.XferOut), metrics.Seconds(tm.HostReduce))
	lut, comb, dist, merge := tm.DPUShares()
	fmt.Printf("DPU stage shares: LUT %.1f%%, comb %.1f%%, distance %.1f%%, top-k %.1f%%; balance ratio %.2f\n",
		100*lut, 100*comb, 100*dist, 100*merge, br.Balance)
}

func readFvecs(path string) (*vecmath.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadFvecs(f, 0)
}
